/**
 * @file
 * Tests for the shared CRC32 (common/checksum): known-answer vectors,
 * incremental equivalence, and sensitivity.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/checksum.hpp"

namespace catsim
{

TEST(Checksum, KnownAnswerVectors)
{
    // The IEEE 802.3 check value: crc32("123456789") = 0xCBF43926.
    const char check[] = "123456789";
    EXPECT_EQ(crc32(check, std::strlen(check)), 0xCBF43926u);
    // Empty input: init xor final = 0.
    EXPECT_EQ(crc32("", 0), 0u);
    // One byte, independently computable.
    EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
}

TEST(Checksum, IncrementalMatchesOneShot)
{
    const std::string data =
        "catsim journal record: key bytes, blob bytes, trailer";
    Crc32 inc;
    for (char c : data)
        inc.update(&c, 1);
    EXPECT_EQ(inc.value(), crc32(data.data(), data.size()));

    // Split at an arbitrary boundary.
    Crc32 split;
    split.update(data.data(), 7);
    split.update(data.data() + 7, data.size() - 7);
    EXPECT_EQ(split.value(), crc32(data.data(), data.size()));
}

TEST(Checksum, ResetStartsOver)
{
    Crc32 c;
    c.update("junk", 4);
    c.reset();
    c.update("123456789", 9);
    EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Checksum, DetectsSingleBitFlip)
{
    std::string data(64, '\x5A');
    const std::uint32_t good = crc32(data.data(), data.size());
    for (std::size_t byte : {std::size_t(0), std::size_t(31),
                             data.size() - 1}) {
        std::string bad = data;
        bad[byte] ^= 0x01;
        EXPECT_NE(crc32(bad.data(), bad.size()), good)
            << "flip at byte " << byte;
    }
}

} // namespace catsim
