/**
 * @file
 * Tests for the PRCAT scheme wrapper (paper Section V-A).
 */

#include <gtest/gtest.h>

#include "core/prcat.hpp"

namespace catsim
{

TEST(Prcat, EpochRebuildsTree)
{
    Prcat prcat(65536, 64, 11, 32768);
    for (std::uint32_t i = 0; i < 30000; ++i)
        prcat.onActivate(42);
    ASSERT_GT(prcat.tree().leafDepth(42), 5u);
    prcat.onEpoch();
    EXPECT_EQ(prcat.tree().leafDepth(42), 5u)
        << "PRCAT must rebuild the balanced tree every epoch";
    EXPECT_EQ(prcat.stats().epochResets, 1u);
}

TEST(Prcat, RefreshActionMatchesTreeRange)
{
    Prcat prcat(65536, 64, 11, 32768);
    RefreshAction act;
    for (std::uint32_t i = 0; i < 40000; ++i) {
        act = prcat.onActivate(12345);
        if (act.triggered())
            break;
    }
    ASSERT_TRUE(act.triggered());
    const auto [lo, hi] = prcat.tree().leafRange(12345);
    EXPECT_EQ(act.lo, lo - 1);
    EXPECT_EQ(act.hi, hi + 1);
    EXPECT_EQ(act.rowCount, static_cast<Count>(hi - lo + 3));
}

TEST(Prcat, StatsTrackSramAndSplits)
{
    Prcat prcat(65536, 64, 11, 32768);
    for (std::uint32_t i = 0; i < 10000; ++i)
        prcat.onActivate(42);
    const auto &st = prcat.stats();
    EXPECT_EQ(st.activations, 10000u);
    EXPECT_GE(st.sramAccesses, 2u * 10000u);
    EXPECT_GT(st.splits, 0u);
    EXPECT_EQ(st.merges, 0u) << "PRCAT never reconfigures";
}

TEST(Prcat, DeterministicReplay)
{
    Prcat a(65536, 64, 11, 32768), b(65536, 64, 11, 32768);
    for (std::uint32_t i = 0; i < 50000; ++i) {
        const RowAddr row = (i * 2654435761u) & 65535u;
        const auto ra = a.onActivate(row);
        const auto rb = b.onActivate(row);
        ASSERT_EQ(ra.triggered(), rb.triggered());
        ASSERT_EQ(ra.rowCount, rb.rowCount);
    }
}

TEST(Prcat, Name)
{
    Prcat p(65536, 128, 11, 16384);
    EXPECT_EQ(p.name(), "PRCAT_128");
}

TEST(Prcat, SmallConfigurations)
{
    // The smallest legal CAT: M=2, L=2.
    Prcat p(65536, 2, 3, 4096);
    for (std::uint32_t i = 0; i < 20000; ++i)
        p.onActivate(i & 65535u);
    EXPECT_GT(p.stats().activations, 0u);
}

} // namespace catsim
