/**
 * @file
 * End-to-end crosstalk-safety property test.
 *
 * The defining guarantee of every deterministic mitigation scheme (SCA,
 * PRCAT, DRCAT, counter cache) is: no aggressor row is ever activated
 * more than T times without its two potential victims being refreshed
 * in between.  This harness tracks, for every row, the number of
 * activations since the last refresh that covered BOTH of its
 * neighbors, and asserts the count never exceeds T - under random
 * traffic, single-row hammering, multi-target attacks and epoch resets.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/factory.hpp"
#include "trace/attack.hpp"

namespace catsim
{

namespace
{

constexpr RowAddr kRows = 65536;

/** Tracks per-aggressor activation counts between covering refreshes. */
class SafetyChecker
{
  public:
    /**
     * CAT-style schemes consume the access that triggers a split
     * without counting it (paper Algorithm 1), so a hammered row can
     * legitimately overshoot T by one access per split along its leaf
     * path (at most L-1, a few parts in ten thousand of T).  The
     * checker allows that bounded slack.
     */
    static constexpr std::uint32_t kSplitSlack = 16;

    explicit SafetyChecker(std::uint32_t threshold)
        : threshold_(threshold), counts_(kRows, 0)
    {
    }

    /** Returns false (and remembers) on a safety violation. */
    bool
    onActivate(RowAddr row, const RefreshAction &act)
    {
        ++counts_[row];
        // The triggered refresh completes during this activation, so
        // apply it before judging the count.
        if (act.triggered())
            applyRefresh(act);
        if (counts_[row] > threshold_ + kSplitSlack)
            violated_ = true;
        return !violated_;
    }

    /** Retention refresh rewrites every row: all clocks restart. */
    void
    onEpoch()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
    }

    bool violated() const { return violated_; }

  private:
    /**
     * A refresh of rows [lo, hi] resets the hammer clock of every
     * aggressor row whose victims BOTH lie inside the refreshed range,
     * i.e. rows in [lo+1, hi-1], plus the edges of the bank where a
     * row has a single victim.
     */
    void
    applyRefresh(const RefreshAction &act)
    {
        const std::int64_t lo = act.lo == 0 ? 0 : act.lo + 1;
        const std::int64_t hi =
            act.hi == kRows - 1 ? kRows - 1 : act.hi - 1;
        for (std::int64_t r = lo; r <= hi; ++r)
            counts_[static_cast<std::size_t>(r)] = 0;
    }

    std::uint32_t threshold_;
    std::vector<std::uint32_t> counts_;
    bool violated_ = false;
};

SchemeConfig
makeConfig(SchemeKind kind, std::uint32_t counters,
           std::uint32_t threshold)
{
    SchemeConfig cfg;
    cfg.kind = kind;
    cfg.numCounters = counters;
    cfg.maxLevels = 11;
    cfg.threshold = threshold;
    cfg.cacheWays = 8;
    return cfg;
}

/** Drive a scheme + checker with a row stream; assert safety. */
void
runSafety(const SchemeConfig &cfg,
          const std::vector<RowAddr> &stream,
          std::uint32_t epoch_every = 0)
{
    auto scheme = makeScheme(cfg, kRows);
    ASSERT_NE(scheme, nullptr);
    SafetyChecker checker(cfg.threshold);
    std::uint32_t sinceEpoch = 0;
    for (const RowAddr row : stream) {
        const RefreshAction act = scheme->onActivate(row);
        ASSERT_TRUE(checker.onActivate(row, act))
            << cfg.label() << ": row " << row
            << " exceeded T=" << cfg.threshold
            << " activations without victim refresh";
        if (epoch_every && ++sinceEpoch >= epoch_every) {
            scheme->onEpoch();
            checker.onEpoch();
            sinceEpoch = 0;
        }
    }
}

std::vector<RowAddr>
hammerStream(std::size_t n, std::uint64_t seed)
{
    // 4 hammered targets + background noise.
    Xoshiro256StarStar rng(seed);
    const RowAddr targets[4] = {
        static_cast<RowAddr>(rng.nextBounded(kRows)),
        static_cast<RowAddr>(rng.nextBounded(kRows)),
        static_cast<RowAddr>(rng.nextBounded(kRows)),
        static_cast<RowAddr>(rng.nextBounded(kRows))};
    std::vector<RowAddr> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.nextDouble() < 0.75)
            s.push_back(targets[rng.nextBounded(4)]);
        else
            s.push_back(static_cast<RowAddr>(rng.nextBounded(kRows)));
    }
    return s;
}

std::vector<RowAddr>
randomStream(std::size_t n, std::uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    std::vector<RowAddr> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(static_cast<RowAddr>(rng.nextBounded(kRows)));
    return s;
}

} // namespace

/** Parameterized over every deterministic scheme family. */
class SafetyTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind,
                                                 std::uint32_t>>
{
};

TEST_P(SafetyTest, SingleRowHammerNeverExceedsThreshold)
{
    const auto [kind, counters] = GetParam();
    const std::uint32_t T = 1024;
    std::vector<RowAddr> s(200000, 12345);
    runSafety(makeConfig(kind, counters, T), s);
}

TEST_P(SafetyTest, MultiTargetAttackIsSafe)
{
    const auto [kind, counters] = GetParam();
    runSafety(makeConfig(kind, counters, 1024),
              hammerStream(300000, 7));
}

TEST_P(SafetyTest, RandomTrafficIsSafe)
{
    const auto [kind, counters] = GetParam();
    runSafety(makeConfig(kind, counters, 1024),
              randomStream(300000, 11));
}

TEST_P(SafetyTest, SafeAcrossEpochResets)
{
    const auto [kind, counters] = GetParam();
    runSafety(makeConfig(kind, counters, 1024),
              hammerStream(300000, 13), 60000);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SafetyTest,
    ::testing::Values(
        std::make_tuple(SchemeKind::Sca, 64u),
        std::make_tuple(SchemeKind::Sca, 128u),
        std::make_tuple(SchemeKind::Prcat, 64u),
        std::make_tuple(SchemeKind::Prcat, 32u),
        std::make_tuple(SchemeKind::Drcat, 64u),
        std::make_tuple(SchemeKind::Drcat, 32u),
        std::make_tuple(SchemeKind::CounterCache, 2048u)));

TEST(SafetyChecker, DetectsUnprotectedHammer)
{
    // Sanity-check the checker itself: with no mitigation, hammering
    // must eventually violate.
    SafetyChecker checker(1024);
    bool violated = false;
    for (int i = 0; i < 2000 && !violated; ++i)
        violated = !checker.onActivate(42, RefreshAction{});
    EXPECT_TRUE(violated);
}

TEST(Safety, PraIsOnlyProbabilistic)
{
    // With p = 0.5 and T = 1024, failure odds are astronomically low;
    // the stream below must be safe.  (PRA offers no deterministic
    // bound - that is the paper's motivation for CAT.)
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Pra;
    cfg.praProbability = 0.5;
    cfg.threshold = 1024;
    auto scheme = makeScheme(cfg, kRows);
    SafetyChecker checker(1024);
    for (int i = 0; i < 100000; ++i) {
        const auto act = scheme->onActivate(777);
        ASSERT_TRUE(checker.onActivate(777, act));
    }
}

} // namespace catsim
