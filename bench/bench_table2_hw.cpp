/**
 * @file
 * Table II - per-bank hardware energy and area of DRCAT, PRCAT and SCA
 * for M in {32..512} (L=11, T=32K), plus the PRA PRNG specification.
 */

#include <iostream>

#include "common/table.hpp"
#include "energy/hw_model.hpp"
#include "bench_common.hpp"

using namespace catsim;

int
main()
{
    benchBanner("Table II: hardware energy (per bank) and area", 1.0);

    TextTable table({"M", "DRCAT dyn", "DRCAT static", "PRCAT dyn",
                     "PRCAT static", "SCA dyn", "SCA static",
                     "DRCAT mm2", "PRCAT mm2", "SCA mm2"});
    for (std::uint32_t m : {32u, 64u, 128u, 256u, 512u}) {
        const auto d = HwModel::cost(SchemeKind::Drcat, m, 11, 32768);
        const auto p = HwModel::cost(SchemeKind::Prcat, m, 11, 32768);
        const auto s = HwModel::cost(SchemeKind::Sca, m, 11, 32768);
        table.addRow({TextTable::num(m),
                      TextTable::sci(d.dynPerAccess, 2),
                      TextTable::sci(d.staticPerInterval, 2),
                      TextTable::sci(p.dynPerAccess, 2),
                      TextTable::sci(p.staticPerInterval, 2),
                      TextTable::sci(s.dynPerAccess, 2),
                      TextTable::sci(s.staticPerInterval, 2),
                      TextTable::sci(d.areaMm2, 2),
                      TextTable::sci(p.areaMm2, 2),
                      TextTable::sci(s.areaMm2, 2)});
    }
    table.print(std::cout);
    std::cout << "\n(dynamic: nJ per row access; static: nJ per 64 ms "
                 "refresh interval)\n";

    std::cout << "\nPRNG for PRA (Srinivasan et al., 45 nm):\n";
    TextTable prng({"metric", "value"});
    prng.addRow({"area (mm2)",
                 TextTable::sci(EnergyConstants::kPrngAreaMm2, 3)});
    prng.addRow({"throughput (Gbps)", "2.4"});
    prng.addRow({"power (mW)", "7"});
    prng.addRow({"efficiency (nJ/b)",
                 TextTable::sci(EnergyConstants::kPrngPerBitNj, 3)});
    prng.addRow({"eng_PRNG, 9 bits (nJ)",
                 TextTable::sci(9.0 * EnergyConstants::kPrngPerBitNj,
                                3)});
    prng.print(std::cout);

    std::cout << "\nDerived checks: PRCAT64 vs SCA128 iso-area ratio = "
              << TextTable::fixed(
                     HwModel::cost(SchemeKind::Prcat, 64, 11, 32768)
                             .areaMm2
                         / HwModel::cost(SchemeKind::Sca, 128, 11,
                                         32768)
                               .areaMm2,
                     3)
              << "; DRCAT/PRCAT area overhead = "
              << TextTable::pct(
                     HwModel::cost(SchemeKind::Drcat, 64, 11, 32768)
                             .areaMm2
                             / HwModel::cost(SchemeKind::Prcat, 64, 11,
                                             32768)
                                   .areaMm2
                         - 1.0,
                     1)
              << " (paper: ~4.2%)\n";
    return 0;
}
