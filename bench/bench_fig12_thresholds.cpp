/**
 * @file
 * Fig 12 - CMRPO across refresh thresholds T = 64K/32K/16K/8K on the
 * dual-core/2-channel system, with the paper's per-threshold
 * configurations: PRA_0.001/0.002/0.003/0.005, SCA_128 (SCA_256 at
 * 8K), PRCAT_32/64/64/128 and DRCAT_32/64/64/128.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

double
meanCmrpo(ExperimentRunner &runner, const SchemeConfig &cfg)
{
    RunningStat stat;
    for (const auto &profile : workloadSuite()) {
        WorkloadSpec w;
        w.name = profile.name;
        stat.add(
            runner.evalCmrpo(SystemPreset::DualCore2Ch, w, cfg).cmrpo);
    }
    return stat.mean();
}

} // namespace

int
main()
{
    const double scale = benchScale();
    benchBanner("Fig 12: CMRPO vs refresh threshold", scale);
    ExperimentRunner runner(scale);

    struct Row
    {
        std::uint32_t threshold;
        std::uint32_t sca, cat;
    };
    const Row rows[] = {
        {65536, 128, 32},
        {32768, 128, 64},
        {16384, 128, 64},
        {8192, 256, 128},
    };

    TextTable table({"T", "PRA", "SCA", "PRCAT", "DRCAT"});
    for (const Row &r : rows) {
        const double p = praProbabilityFor(r.threshold);
        table.addRow(
            {std::to_string(r.threshold / 1024) + "K (p="
                 + TextTable::fixed(p, 3) + ")",
             TextTable::pct(meanCmrpo(runner,
                                      mkScheme(SchemeKind::Pra, 0, 0,
                                               r.threshold, p)),
                            2),
             TextTable::pct(meanCmrpo(runner,
                                      mkScheme(SchemeKind::Sca, r.sca,
                                               0, r.threshold)),
                            2),
             TextTable::pct(
                 meanCmrpo(runner, mkScheme(SchemeKind::Prcat, r.cat,
                                            11, r.threshold)),
                 2),
             TextTable::pct(
                 meanCmrpo(runner, mkScheme(SchemeKind::Drcat, r.cat,
                                            11, r.threshold)),
                 2)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper): DRCAT < 5% for T=64K..16K "
                 "(vs PRA ~12%); at T=8K doubling the CAT counters "
                 "keeps CMRPO under 10%.\n";
    return 0;
}
