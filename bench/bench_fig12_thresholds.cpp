/**
 * @file
 * Fig 12 - CMRPO across refresh thresholds T = 64K/32K/16K/8K on the
 * dual-core/2-channel system, with the paper's per-threshold
 * configurations: PRA_0.001/0.002/0.003/0.005, SCA_128 (SCA_256 at
 * 8K), PRCAT_32/64/64/128 and DRCAT_32/64/64/128.
 *
 * All 16 configurations x 18 workloads go through one SweepRunner
 * grid; the table is assembled from the cell-indexed results, so any
 * CATSIM_JOBS value prints identical numbers.
 */

#include <iostream>

#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Fig 12: CMRPO vs refresh threshold", scale,
                sweep.jobs());

    struct Row
    {
        std::uint32_t threshold;
        std::uint32_t sca, cat;
    };
    const Row rows[] = {
        {65536, 128, 32},
        {32768, 128, 64},
        {16384, 128, 64},
        {8192, 256, 128},
    };

    // Four configs per row, in column order.
    std::vector<SchemeConfig> configs;
    for (const Row &r : rows) {
        const double p = praProbabilityFor(r.threshold);
        configs.push_back(
            mkScheme(SchemeKind::Pra, 0, 0, r.threshold, p));
        configs.push_back(
            mkScheme(SchemeKind::Sca, r.sca, 0, r.threshold));
        configs.push_back(
            mkScheme(SchemeKind::Prcat, r.cat, 11, r.threshold));
        configs.push_back(
            mkScheme(SchemeKind::Drcat, r.cat, 11, r.threshold));
    }

    const std::vector<double> means = suiteMeanCmrpo(sweep, configs);

    TextTable table({"T", "PRA", "SCA", "PRCAT", "DRCAT"});
    std::size_t idx = 0;
    for (const Row &r : rows) {
        const double p = praProbabilityFor(r.threshold);
        table.addRow({std::to_string(r.threshold / 1024) + "K (p="
                          + TextTable::fixed(p, 3) + ")",
                      TextTable::pct(means[idx], 2),
                      TextTable::pct(means[idx + 1], 2),
                      TextTable::pct(means[idx + 2], 2),
                      TextTable::pct(means[idx + 3], 2)});
        for (std::size_t k = 0; k < 4; ++k)
            benchMetric("cmrpo_mean_T"
                            + std::to_string(r.threshold / 1024) + "K_"
                            + configs[idx + k].label(),
                        means[idx + k]);
        idx += 4;
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper): DRCAT < 5% for T=64K..16K "
                 "(vs PRA ~12%); at T=8K doubling the CAT counters "
                 "keeps CMRPO under 10%.\n";
    return 0;
}
