/**
 * @file
 * Fig 2 - per-bank energy of SCA over a 64 ms interval as the number
 * of counters sweeps 16..65536: counter energy (dynamic + static),
 * victim-refresh energy (averaged over the 18 workloads), and the
 * total, plus the optimistic 2K/8K counter-cache horizontal lines.
 * The paper's observation: the total is minimized near M=128.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "energy/hw_model.hpp"
#include "bench_common.hpp"

using namespace catsim;

int
main()
{
    const double scale = benchScale();
    benchBanner("Fig 2: SCA energy vs number of counters", scale);

    ExperimentRunner runner(scale);

    // Per-bank, per-interval averages over the full workload suite.
    RunningStat actsPerBankInterval;
    std::vector<RunningStat> refreshRows; // per M index
    const std::uint32_t counters[] = {16,   32,   64,   128,  256,
                                      512,  1024, 2048, 4096, 8192,
                                      16384, 32768, 65536};
    const std::size_t nM = std::size(counters);
    refreshRows.resize(nM);

    for (const auto &profile : workloadSuite()) {
        WorkloadSpec w;
        w.name = profile.name;
        const auto &base =
            runner.baseline(SystemPreset::DualCore2Ch, w);
        const double banks =
            static_cast<double>(base.bankStreams.size());
        const double epochs =
            std::max<double>(1.0, static_cast<double>(base.epochs));
        actsPerBankInterval.add(
            static_cast<double>(base.totalActivations) / banks
            / epochs);
        for (std::size_t i = 0; i < nM; ++i) {
            const auto cfg =
                mkScheme(SchemeKind::Sca, counters[i], 11, 32768);
            const auto r = runner.evalCmrpo(SystemPreset::DualCore2Ch,
                                            w, cfg);
            // Rows refreshed per bank per (unscaled) interval.
            refreshRows[i].add(
                static_cast<double>(r.stats.victimRowsRefreshed)
                / banks / epochs * scale);
        }
    }

    const double acts = actsPerBankInterval.mean() / scale;
    std::cout << "mean activations per bank per 64 ms interval: "
              << TextTable::fixed(acts, 0) << "\n\n";

    TextTable table({"M", "counter energy (nJ)", "refresh (nJ)",
                     "total (nJ)"});
    double bestTotal = 1e300;
    std::uint32_t bestM = 0;
    for (std::size_t i = 0; i < nM; ++i) {
        const auto hw =
            HwModel::cost(SchemeKind::Sca, counters[i], 11, 32768);
        const double counterNj =
            hw.dynPerAccess * acts + hw.staticPerInterval;
        const double refreshNj = refreshRows[i].mean()
                                 * EnergyConstants::kRefreshPerRowNj;
        const double total = counterNj + refreshNj;
        if (total < bestTotal) {
            bestTotal = total;
            bestM = counters[i];
        }
        table.addRow({TextTable::num(counters[i]),
                      TextTable::sci(counterNj, 2),
                      TextTable::sci(refreshNj, 2),
                      TextTable::sci(total, 2)});
    }
    table.print(std::cout);

    std::cout << "\nCounter-cache baselines (optimistic, no-miss; "
                 "Fig 2 horizontal lines):\n";
    TextTable cc({"cache", "energy (nJ per interval)",
                  "equals SCA at"});
    for (std::uint32_t c : {2048u, 8192u}) {
        const auto hw =
            HwModel::cost(SchemeKind::CounterCache, c, 0, 32768);
        cc.addRow({std::to_string(c / 1024) + "K counters",
                   TextTable::sci(hw.dynPerAccess * acts
                                      + hw.staticPerInterval,
                                  2),
                   "SCA_" + std::to_string(2 * c)});
    }
    cc.print(std::cout);

    std::cout << "\ntotal minimized at M=" << bestM
              << " (paper: M=128)\n";
    return 0;
}
