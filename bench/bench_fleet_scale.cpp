/**
 * @file
 * Fleet-scale shard-scaling bench.
 *
 * Replays an attacked-bank-skewed synthetic fleet (every 8th pair of
 * banks hammers 10x harder than the rest - the skew the work-stealing
 * pool exists for) through ShardedSim at 1, 2, 4 and 8 shards and
 * reports the scaling curve:
 *
 *   acts_per_sec_core      single-shard throughput (the per-core rate
 *                          check_perf.py guards across PRs)
 *   fleet_acts_per_sec_sK  aggregate throughput at K shards
 *   fleet_speedup_sK       aggregate speedup over the 1-shard run
 *   fleet_efficiency_sK    speedup / min(K, hardware cores)
 *   fleet_worker_tier      2 = host has >= 4 cores, 1 = 2-3, 0 = 1
 *                          (check_perf.py keys its speedup floors by
 *                          tier; a 1-core CI box cannot show a 4x)
 *   fleet_result_*         merged SchemeStats - bit-identical at every
 *                          shard count, so CI diffs these lines between
 *                          CATSIM_SHARDS=1 and =4 runs for free
 *
 * The bench itself re-checks the determinism contract: if any shard
 * count's merged totals differ from the 1-shard run it exits nonzero.
 * With CATSIM_CHECKPOINT set every fleet run journals per shard, so a
 * SIGKILLed bench resumes finished shards from disk.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "sim/activation_source.hpp"
#include "sim/shard.hpp"

namespace catsim
{
namespace
{

constexpr std::uint32_t kBanks = 64;  //!< quad-core-class flat topology
constexpr RowAddr kRows = 65536;

/**
 * Deterministic per-global-bank source with the attacked-bank skew:
 * banks where bank % 8 < 2 run ten times hotter.  Hot banks land two
 * per 16-bank shard at 4 shards, so the contiguous split stays
 * balanced while individual banks are wildly uneven.
 */
std::unique_ptr<ActivationSource>
makeSkewedSource(std::uint32_t bank, std::uint64_t acts_per_epoch)
{
    AttackSourceParams p;
    p.numRows = kRows;
    p.targets = {RowAddr(100 + bank), RowAddr(500 + bank),
                 RowAddr(900 + bank)};
    p.actsPerEpoch =
        (bank % 8 < 2) ? acts_per_epoch * 10 : acts_per_epoch;
    p.epochs = 2;
    p.seed = 1000 + bank;
    return std::make_unique<SyntheticAttackSource>(p);
}

struct ScalePoint
{
    std::uint32_t shards = 0;
    double seconds = 0.0;
    FleetResult fleet;
};

int
workerTier(unsigned hw)
{
    if (hw >= 4)
        return 2;
    if (hw >= 2)
        return 1;
    return 0;
}

bool
sameTotals(const ReplayResult &a, const ReplayResult &b)
{
    const SchemeStats &x = a.stats;
    const SchemeStats &y = b.stats;
    return x.activations == y.activations &&
           x.refreshEvents == y.refreshEvents &&
           x.victimRowsRefreshed == y.victimRowsRefreshed &&
           x.sramAccesses == y.sramAccesses && x.prngBits == y.prngBits &&
           x.splits == y.splits && x.merges == y.merges &&
           x.epochResets == y.epochResets &&
           x.counterDramReads == y.counterDramReads &&
           x.counterDramWrites == y.counterDramWrites &&
           a.banks == b.banks && a.epochs == b.epochs;
}

} // namespace
} // namespace catsim

int
main()
{
    using namespace catsim;
    using Clock = std::chrono::steady_clock;

    const double scale = benchScale();
    const std::size_t jobs = defaultJobs();
    benchBanner("Fleet-scale shard scaling curve", scale, jobs);

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const int tier = workerTier(hw);
    std::printf("host: %u hardware thread(s), worker tier %d, "
                "pool jobs %zu\n\n",
                hw, tier, jobs);

    // Co-scale the refresh threshold with the activation volume, same
    // 512 floor as ExperimentRunner::scaledThreshold.
    const auto threshold = std::max<std::uint32_t>(
        static_cast<std::uint32_t>(32768.0 * scale), 512);
    SchemeConfig cfg = mkScheme(SchemeKind::Prcat, 64, 11, threshold);
    const auto acts_per_epoch =
        static_cast<std::uint64_t>(100000.0 * scale);
    const auto make_source = [&](std::uint32_t bank) {
        return makeSkewedSource(bank, acts_per_epoch);
    };

    // Oracle run at the env-selected shard count (CATSIM_SHARDS),
    // untimed: it doubles as warm-up, and emitting fleet_result_* from
    // it means runs at CATSIM_SHARDS=1 and =4 genuinely exercised
    // different shardings when CI diffs those lines.
    const std::uint32_t result_shards = defaultShards();
    ShardedSim oracle_sim(cfg, kRows, ShardPlan::make(kBanks, result_shards),
                          jobs);
    const FleetResult oracle_fleet =
        oracle_sim.run(make_source, "fleet-scale-bench");
    std::printf("result run: %u shard(s) (CATSIM_SHARDS), %zu resumed "
                "from checkpoint\n\n",
                oracle_sim.plan().numShards(), oracle_fleet.resumedShards);

    std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};
    std::vector<ScalePoint> points;
    for (std::uint32_t shards : shard_counts) {
        ShardedSim sim(cfg, kRows, ShardPlan::make(kBanks, shards), jobs);
        ScalePoint pt;
        pt.shards = sim.plan().numShards();
        const auto t0 = Clock::now();
        pt.fleet = sim.run(make_source, "fleet-scale-bench");
        pt.seconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        points.push_back(std::move(pt));
    }

    // Determinism self-check: every shard count must merge to the
    // same totals as the oracle run.
    const ReplayResult &oracle = oracle_fleet.total;
    if (!oracle_fleet.errors.empty()) {
        std::fprintf(stderr, "FAIL: %zu shard error(s) in oracle run\n",
                     oracle_fleet.errors.size());
        return 1;
    }
    for (const ScalePoint &pt : points) {
        if (!pt.fleet.errors.empty()) {
            std::fprintf(stderr,
                         "FAIL: %zu shard error(s) at shards=%u\n",
                         pt.fleet.errors.size(), pt.shards);
            return 1;
        }
        if (!sameTotals(pt.fleet.total, oracle)) {
            std::fprintf(stderr,
                         "FAIL: totals at shards=%u differ from the "
                         "1-shard run (determinism contract broken)\n",
                         pt.shards);
            return 1;
        }
    }

    const double acts =
        static_cast<double>(oracle.stats.activations);
    const double rate1 = acts / std::max(points[0].seconds, 1e-9);

    std::printf("%-8s %-8s %12s %14s %9s %8s\n", "shards", "steals",
                "seconds", "acts/sec", "speedup", "eff");
    for (const ScalePoint &pt : points) {
        const double rate = acts / std::max(pt.seconds, 1e-9);
        const double speedup = rate / rate1;
        const auto cores =
            static_cast<double>(std::min<unsigned>(pt.shards, hw));
        std::printf("%-8u %-8llu %12.4f %14.0f %8.2fx %8.2f\n",
                    pt.shards,
                    static_cast<unsigned long long>(pt.fleet.steals),
                    pt.seconds, rate, speedup, speedup / cores);
    }
    std::printf("\n");

    benchMetric("fleet_worker_tier", tier);
    benchMetric("acts_per_sec_core", rate1);
    for (const ScalePoint &pt : points) {
        const double rate = acts / std::max(pt.seconds, 1e-9);
        const std::string suffix = "_s" + std::to_string(pt.shards);
        benchMetric("fleet_acts_per_sec" + suffix, rate);
        benchMetric("fleet_speedup" + suffix, rate / rate1);
        benchMetric(
            "fleet_efficiency" + suffix,
            rate / rate1 /
                static_cast<double>(std::min<unsigned>(pt.shards, hw)));
    }

    // Shard-count-invariant result metrics: CI runs this bench at
    // CATSIM_SHARDS=1 and =4 and diffs these lines verbatim.
    benchMetric("fleet_result_activations",
                static_cast<double>(oracle.stats.activations));
    benchMetric("fleet_result_refresh_events",
                static_cast<double>(oracle.stats.refreshEvents));
    benchMetric("fleet_result_victim_rows",
                static_cast<double>(oracle.stats.victimRowsRefreshed));
    benchMetric("fleet_result_sram_accesses",
                static_cast<double>(oracle.stats.sramAccesses));
    benchMetric("fleet_result_epoch_resets",
                static_cast<double>(oracle.stats.epochResets));
    benchMetric("fleet_result_epochs",
                static_cast<double>(oracle.epochs));
    return 0;
}
