/**
 * @file
 * Fig 16 (beyond the paper) - the modern-attack scenario corpus.
 *
 * The paper predates the current attack generation.  This bench pits
 * the paper's schemes plus two post-paper baselines against the
 * patterns that broke deployed TRR, and against the benign cloud
 * traffic that dynamic schemes are sold on:
 *
 *   Static     fixed Gaussian targets per bank (paper's kernels)
 *   ManySided  aggressor pairs straddling each victim row (v-1, v+1),
 *              the TRRespass many-sided layout
 *   HalfDouble far aggressor pairs at physical distance 2 (v-2, v+2),
 *              hammering through a blast radius of 2
 *   CloudMix   benign multi-tenant Zipf mix with deterministic
 *              hot-set phase changes (no aggressors at all)
 *
 * Schemes: the paper's CC / PRCAT / DRCAT / PRA plus Misra-Gries
 * frequent-item tracking (Graphene-style, same SRAM budget accounting)
 * and a DDR5 RFM-style rolling activation counter.
 *
 * Expected shape: per-bank CMRPO is nearly layout-invariant across
 * the hammering scenarios (a saturating hammer costs a counting
 * defense about the same however the aggressors are arranged - the
 * straddle layouts spread the same activation budget over twice the
 * rows); the corpus separates schemes on the *benign* cloud mix,
 * where shifting Zipf hot sets keep the trees reconfiguring and
 * thrash the counter cache while Misra-Gries stays flat.  RFM's
 * blind rolling counter pays the same CMRPO everywhere, attack or
 * not.  The disturbance grid shows every deterministic scheme
 * holding hammered rows at the threshold while PRA overshoots.
 */

#include <iostream>

#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

/** Kernels averaged per cell (env CATSIM_ATTACK_KERNELS, default 3). */
std::uint64_t
kernelCount()
{
    const char *env = std::getenv("CATSIM_ATTACK_KERNELS");
    if (!env)
        return 3;
    const long v = std::atol(env);
    return v >= 1 && v <= 12 ? static_cast<std::uint64_t>(v) : 3;
}

/** Straddle scenarios hammer pairs; give them 4 pairs per bank. */
std::uint32_t
targetsFor(AttackerKind attacker)
{
    return attacker == AttackerKind::ManySided
                   || attacker == AttackerKind::HalfDouble
               ? 8
               : 4;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Fig 16: modern-attack scenario corpus "
                "(many-sided, half-double, cloud mix)",
                scale, sweep.jobs());
    const std::uint64_t kernels = kernelCount();
    std::cout << "averaging over " << kernels
              << " target placements per cell (CATSIM_ATTACK_KERNELS)"
              << "\n\n";

    constexpr int kAttackers = 4;
    constexpr int kSchemes = 6;
    const AttackerKind attackers[kAttackers] = {
        AttackerKind::Static,
        AttackerKind::ManySided,
        AttackerKind::HalfDouble,
        AttackerKind::CloudMix,
    };
    const std::uint32_t threshold = 32768;
    SchemeConfig rfm = mkScheme(SchemeKind::Rfm, 0, 0, threshold);
    rfm.rfmBudget = 64;
    const SchemeConfig schemes[kSchemes] = {
        mkScheme(SchemeKind::CounterCache, 2048, 0, threshold),
        mkScheme(SchemeKind::Prcat, 64, 11, threshold),
        mkScheme(SchemeKind::Drcat, 64, 11, threshold),
        mkScheme(SchemeKind::Pra, 0, 0, threshold,
                 praProbabilityFor(threshold)),
        mkScheme(SchemeKind::MisraGries, 512, 0, threshold),
        rfm,
    };
    const char *schemeNames[kSchemes] = {"CC",  "PRCAT", "DRCAT",
                                         "PRA", "MG",    "RFM"};

    // One flat closed-loop grid: scenario rows x scheme columns x
    // `kernels` placements per cell.
    std::vector<AdaptiveCell> cells;
    for (AttackerKind attacker : attackers) {
        for (const SchemeConfig &cfg : schemes) {
            for (std::uint64_t k = 1; k <= kernels; ++k) {
                AdaptiveCell c;
                c.preset = SystemPreset::DualCore2Ch;
                c.attack.attacker = attacker;
                c.attack.mode = AttackMode::Medium;
                c.attack.kernel = k;
                c.attack.targetsPerBank = targetsFor(attacker);
                c.scheme = cfg;
                cells.push_back(c);
            }
        }
    }

    const std::vector<EvalResult> results = sweep.runAdaptive(cells);

    TextTable table(
        {"scenario", "CC", "PRCAT", "DRCAT", "PRA", "MG", "RFM"});
    std::size_t idx = 0;
    for (int a = 0; a < kAttackers; ++a) {
        std::vector<std::string> row{attackerKindName(attackers[a])};
        for (int s = 0; s < kSchemes; ++s) {
            RunningStat stat;
            for (std::uint64_t k = 1; k <= kernels; ++k)
                stat.add(results[idx++].cmrpo);
            row.push_back(TextTable::pct(stat.mean(), 2));
            benchMetric("cmrpo_mean_"
                            + std::string(
                                attackerKindName(attackers[a]))
                            + "_" + schemeNames[s],
                        stat.mean());
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    // Attacker-success view: the maximum activations any row
    // accumulated before a refresh covered its victims, as a fraction
    // of the (scaled) refresh threshold.  For CloudMix this is simply
    // how hot the hottest benign row ran.
    std::cout << "\nmax inter-refresh disturbance / threshold "
                 "(kernel 1, Medium):\n";
    std::vector<AdaptiveCell> disturbCells;
    for (AttackerKind attacker : attackers) {
        for (const SchemeConfig &cfg : schemes) {
            AdaptiveCell c;
            c.preset = SystemPreset::DualCore2Ch;
            c.attack.attacker = attacker;
            c.attack.mode = AttackMode::Medium;
            c.attack.kernel = 1;
            c.attack.targetsPerBank = targetsFor(attacker);
            c.scheme = cfg;
            disturbCells.push_back(c);
        }
    }
    const std::vector<double> disturb = sweep.runAdaptiveMetric(
        disturbCells,
        [](ExperimentRunner &r, const AdaptiveCell &c) {
            return r.evalAdaptiveDisturbance(c.preset, c.attack,
                                             c.scheme);
        });

    TextTable disturbTable(
        {"scenario", "CC", "PRCAT", "DRCAT", "PRA", "MG", "RFM"});
    idx = 0;
    for (int a = 0; a < kAttackers; ++a) {
        std::vector<std::string> row{attackerKindName(attackers[a])};
        for (int s = 0; s < kSchemes; ++s) {
            row.push_back(TextTable::fixed(disturb[idx], 3));
            benchMetric("disturb_max_"
                            + std::string(
                                attackerKindName(attackers[a]))
                            + "_" + schemeNames[s],
                        disturb[idx]);
            ++idx;
        }
        disturbTable.addRow(std::move(row));
    }
    disturbTable.print(std::cout);

    std::cout
        << "\nExpected shape: the hammering rows are nearly "
           "identical per scheme - arranging the same activation "
           "budget as straddling pairs changes per-bank replay cost "
           "very little - while the benign CloudMix row separates "
           "the families: shifting hot sets keep PRCAT/DRCAT "
           "reconfiguring (several times their attack-scenario "
           "CMRPO) and thrash CC's counter cache, while Misra-Gries "
           "stays flat and RFM charges its unconditional rolling-"
           "counter rate everywhere.  Disturbance: deterministic "
           "trackers hold hammered rows at 1.0x threshold, PRA "
           "overshoots (2x+), and RFM's frequent blind refreshes "
           "keep even the hottest row well below threshold.\n";
    return 0;
}
