/**
 * @file
 * Fig 8 - CMRPO per workload for T=32K (PRA_0.002) and T=16K
 * (PRA_0.003), comparing PRA, SCA_64, SCA_128, PRCAT_64 and DRCAT_64
 * (CAT variants with up to L=11 levels) on the dual-core/2-channel
 * system.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

void
figure(ExperimentRunner &runner, std::uint32_t threshold)
{
    const double p = praProbabilityFor(threshold);
    const SchemeConfig configs[] = {
        mkScheme(SchemeKind::Pra, 0, 0, threshold, p),
        mkScheme(SchemeKind::Sca, 64, 0, threshold),
        mkScheme(SchemeKind::Sca, 128, 0, threshold),
        mkScheme(SchemeKind::Prcat, 64, 11, threshold),
        mkScheme(SchemeKind::Drcat, 64, 11, threshold),
    };

    std::cout << "--- T = " << threshold / 1024 << "K ---\n";
    std::vector<std::string> header{"workload", "suite"};
    for (const auto &c : configs)
        header.push_back(c.label());
    TextTable table(header);

    std::vector<RunningStat> mean(std::size(configs));
    for (const auto &profile : workloadSuite()) {
        WorkloadSpec w;
        w.name = profile.name;
        std::vector<std::string> row{profile.name, profile.suite};
        for (std::size_t i = 0; i < std::size(configs); ++i) {
            const auto r = runner.evalCmrpo(SystemPreset::DualCore2Ch,
                                            w, configs[i]);
            mean[i].add(r.cmrpo);
            row.push_back(TextTable::pct(r.cmrpo, 2));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> meanRow{"Mean", "-"};
    for (auto &m : mean)
        meanRow.push_back(TextTable::pct(m.mean(), 2));
    table.addRow(std::move(meanRow));
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    const double scale = benchScale();
    benchBanner("Fig 8: CMRPO per workload", scale);
    ExperimentRunner runner(scale);
    figure(runner, 32768);
    figure(runner, 16384);
    std::cout << "Expected shape (paper): PRCAT64/DRCAT64 lowest "
                 "(~4%), well below PRA and SCA (~11%) at T=32K; at "
                 "T=16K SCA degrades sharply while CAT moves little.\n";
    return 0;
}
