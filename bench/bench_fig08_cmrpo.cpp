/**
 * @file
 * Fig 8 - CMRPO per workload for T=32K (PRA_0.002) and T=16K
 * (PRA_0.003), comparing PRA, SCA_64, SCA_128, PRCAT_64 and DRCAT_64
 * (CAT variants with up to L=11 levels) on the dual-core/2-channel
 * system.
 *
 * Each T-figure is one SweepRunner grid (18 workloads x 5 schemes)
 * evaluated in parallel; rows are reassembled from the cell-indexed
 * results, so the table matches the old serial loops bit for bit at
 * any CATSIM_JOBS.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

void
figure(SweepRunner &sweep, std::uint32_t threshold)
{
    const double p = praProbabilityFor(threshold);
    const SchemeConfig configs[] = {
        mkScheme(SchemeKind::Pra, 0, 0, threshold, p),
        mkScheme(SchemeKind::Sca, 64, 0, threshold),
        mkScheme(SchemeKind::Sca, 128, 0, threshold),
        mkScheme(SchemeKind::Prcat, 64, 11, threshold),
        mkScheme(SchemeKind::Drcat, 64, 11, threshold),
    };

    // Workload-major cells mirror the serial evaluation order.
    const auto &suite = workloadSuite();
    std::vector<SweepCell> cells;
    cells.reserve(suite.size() * std::size(configs));
    for (const auto &profile : suite) {
        for (const auto &cfg : configs) {
            SweepCell c;
            c.workload.name = profile.name;
            c.scheme = cfg;
            cells.push_back(c);
        }
    }
    const auto results = sweep.runCmrpo(cells);

    std::cout << "--- T = " << threshold / 1024 << "K ---\n";
    std::vector<std::string> header{"workload", "suite"};
    for (const auto &c : configs)
        header.push_back(c.label());
    TextTable table(header);

    std::vector<RunningStat> mean(std::size(configs));
    std::size_t idx = 0;
    for (const auto &profile : suite) {
        std::vector<std::string> row{profile.name, profile.suite};
        for (std::size_t i = 0; i < std::size(configs); ++i) {
            const double v = results[idx++].cmrpo;
            mean[i].add(v);
            row.push_back(TextTable::pct(v, 2));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> meanRow{"Mean", "-"};
    for (std::size_t i = 0; i < std::size(configs); ++i) {
        meanRow.push_back(TextTable::pct(mean[i].mean(), 2));
        benchMetric("cmrpo_mean_T" + std::to_string(threshold / 1024)
                        + "K_" + configs[i].label(),
                    mean[i].mean());
    }
    table.addRow(std::move(meanRow));
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Fig 8: CMRPO per workload", scale, sweep.jobs());
    figure(sweep, 32768);
    figure(sweep, 16384);
    std::cout << "Expected shape (paper): PRCAT64/DRCAT64 lowest "
                 "(~4%), well below PRA and SCA (~11%) at T=32K; at "
                 "T=16K SCA degrades sharply while CAT moves little.\n";
    return 0;
}
