/**
 * @file
 * Fig 3 - row address access frequency in one DRAM bank over a 64 ms
 * interval for blackscholes and facesim: a small group of rows
 * dominates the accesses, which motivates dynamic counter assignment.
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

void
analyze(ExperimentRunner &runner, const std::string &name)
{
    WorkloadSpec w;
    w.name = name;
    const auto &base = runner.baseline(SystemPreset::DualCore2Ch, w);

    // Bank 0's activation stream, first epoch only.
    std::map<RowAddr, Count> freq;
    Count total = 0;
    for (const RowAddr r : base.bankStreams[0]) {
        if (r == kEpochMarker)
            break;
        ++freq[r];
        ++total;
    }

    std::vector<std::pair<Count, RowAddr>> sorted;
    for (const auto &[row, c] : freq)
        sorted.emplace_back(c, row);
    std::sort(sorted.rbegin(), sorted.rend());

    std::cout << "workload " << name << ": " << total
              << " activations to " << freq.size()
              << " distinct rows in bank 0 (one scaled interval)\n";

    TextTable top({"rank", "row address", "accesses", "share"});
    for (std::size_t i = 0; i < std::min<std::size_t>(10, sorted.size());
         ++i) {
        top.addRow({TextTable::num(i + 1),
                    TextTable::num(sorted[i].second),
                    TextTable::num(sorted[i].first),
                    TextTable::pct(static_cast<double>(sorted[i].first)
                                       / static_cast<double>(total),
                                   1)});
    }
    top.print(std::cout);

    auto shareOfTop = [&](std::size_t k) {
        Count c = 0;
        for (std::size_t i = 0; i < std::min(k, sorted.size()); ++i)
            c += sorted[i].first;
        return static_cast<double>(c) / static_cast<double>(total);
    };
    std::cout << "top-8 rows: " << TextTable::pct(shareOfTop(8), 1)
              << "  top-32 rows: " << TextTable::pct(shareOfTop(32), 1)
              << "  top-128 rows: "
              << TextTable::pct(shareOfTop(128), 1) << "\n\n";
}

} // namespace

int
main()
{
    const double scale = benchScale();
    benchBanner("Fig 3: row address frequency in a DRAM bank", scale);
    ExperimentRunner runner(scale);
    analyze(runner, "black");
    analyze(runner, "face");
    std::cout << "Expected shape: a handful of rows dominate overall "
                 "accesses (paper Fig 3).\n";
    return 0;
}
