/**
 * @file
 * Fig 13 - ETO of the benign workload under kernel row-hammer attacks
 * for three mixes (Heavy 75%, Medium 50%, Light 25% target accesses)
 * and T = 32K/16K/8K, comparing SCA, PRCAT and DRCAT at the paper's
 * per-threshold counter counts (SCA_128/PRCAT_64/DRCAT_64; doubled at
 * T=8K).  Attacks follow Section VIII-D: 4 Gaussian-placed target rows
 * per bank, mixed into a memory-intensive benign workload.
 *
 * Every (threshold, mode, scheme, kernel) cell is an independent
 * timing run, so the whole figure is one SweepRunner ETO grid; kernel
 * means are folded from the cell-indexed results in kernel order,
 * matching the old serial loops bit for bit.
 */

#include <iostream>

#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

/** Kernels averaged per cell (paper uses 12; 3 keeps the bench quick;
 *  raise via CATSIM_ATTACK_KERNELS). */
std::uint64_t
kernelCount()
{
    const char *env = std::getenv("CATSIM_ATTACK_KERNELS");
    if (!env)
        return 3;
    const long v = std::atol(env);
    return v >= 1 && v <= 12 ? static_cast<std::uint64_t>(v) : 3;
}

SweepCell
attackCell(AttackMode mode, std::uint64_t kernel,
           const SchemeConfig &cfg)
{
    SweepCell c;
    c.preset = SystemPreset::DualCore2Ch;
    c.workload.name = "comm2"; // memory-intensive benign background
    c.workload.isAttack = true;
    c.workload.attackMode = mode;
    c.workload.attackKernel = kernel;
    c.scheme = cfg;
    return c;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Fig 13: ETO under kernel attacks", scale,
                sweep.jobs());
    const std::uint64_t kernels = kernelCount();
    std::cout << "averaging over " << kernels
              << " attack kernels per cell (paper: 12; set "
                 "CATSIM_ATTACK_KERNELS)\n\n";

    const AttackMode modes[] = {AttackMode::Heavy, AttackMode::Medium,
                                AttackMode::Light};

    // One flat ETO grid covering the whole figure: for every
    // (threshold, mode) row, three scheme columns x `kernels` cells.
    std::vector<SweepCell> cells;
    for (std::uint32_t threshold : {32768u, 16384u, 8192u}) {
        const std::uint32_t sca = threshold == 8192 ? 256 : 128;
        const std::uint32_t cat = threshold == 8192 ? 128 : 64;
        for (AttackMode mode : modes) {
            const SchemeConfig cfgs[] = {
                mkScheme(SchemeKind::Sca, sca, 0, threshold),
                mkScheme(SchemeKind::Prcat, cat, 11, threshold),
                mkScheme(SchemeKind::Drcat, cat, 11, threshold),
            };
            for (const SchemeConfig &cfg : cfgs)
                for (std::uint64_t k = 1; k <= kernels; ++k)
                    cells.push_back(attackCell(mode, k, cfg));
        }
    }

    const std::vector<double> etos = sweep.runEto(cells);

    TextTable table({"T", "mode", "SCA", "PRCAT", "DRCAT"});
    const char *schemeNames[] = {"SCA", "PRCAT", "DRCAT"};
    std::size_t idx = 0;
    for (std::uint32_t threshold : {32768u, 16384u, 8192u}) {
        for (AttackMode mode : modes) {
            std::vector<std::string> row{
                std::to_string(threshold / 1024) + "K",
                attackModeName(mode)};
            for (int scheme = 0; scheme < 3; ++scheme) {
                RunningStat stat;
                for (std::uint64_t k = 1; k <= kernels; ++k)
                    stat.add(etos[idx++]);
                row.push_back(TextTable::pct(stat.mean(), 3));
                benchMetric("eto_mean_T"
                                + std::to_string(threshold / 1024)
                                + "K_"
                                + std::string(attackModeName(mode))
                                + "_" + schemeNames[scheme],
                            stat.mean());
            }
            table.addRow(std::move(row));
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper): heavier attacks -> higher "
                 "ETO; SCA worst (up to ~4.5% at T=16K Heavy), CAT "
                 "variants < 0.9%; T=8K lower than 16K because the "
                 "counter count doubles.\n";
    return 0;
}
