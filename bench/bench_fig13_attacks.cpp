/**
 * @file
 * Fig 13 - ETO of the benign workload under kernel row-hammer attacks
 * for three mixes (Heavy 75%, Medium 50%, Light 25% target accesses)
 * and T = 32K/16K/8K, comparing SCA, PRCAT and DRCAT at the paper's
 * per-threshold counter counts (SCA_128/PRCAT_64/DRCAT_64; doubled at
 * T=8K).  Attacks follow Section VIII-D: 4 Gaussian-placed target rows
 * per bank, mixed into a memory-intensive benign workload.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

/** Kernels averaged per cell (paper uses 12; 3 keeps the bench quick;
 *  raise via CATSIM_ATTACK_KERNELS). */
std::uint64_t
kernelCount()
{
    const char *env = std::getenv("CATSIM_ATTACK_KERNELS");
    if (!env)
        return 3;
    const long v = std::atol(env);
    return v >= 1 && v <= 12 ? static_cast<std::uint64_t>(v) : 3;
}

double
meanEto(ExperimentRunner &runner, AttackMode mode,
        const SchemeConfig &cfg, std::uint64_t kernels)
{
    RunningStat stat;
    for (std::uint64_t k = 1; k <= kernels; ++k) {
        WorkloadSpec w;
        w.name = "comm2"; // memory-intensive benign background
        w.isAttack = true;
        w.attackMode = mode;
        w.attackKernel = k;
        stat.add(runner.evalEto(SystemPreset::DualCore2Ch, w, cfg));
    }
    return stat.mean();
}

} // namespace

int
main()
{
    const double scale = benchScale();
    benchBanner("Fig 13: ETO under kernel attacks", scale);
    const std::uint64_t kernels = kernelCount();
    std::cout << "averaging over " << kernels
              << " attack kernels per cell (paper: 12; set "
                 "CATSIM_ATTACK_KERNELS)\n\n";
    ExperimentRunner runner(scale);

    TextTable table({"T", "mode", "SCA", "PRCAT", "DRCAT"});
    for (std::uint32_t threshold : {32768u, 16384u, 8192u}) {
        const std::uint32_t sca = threshold == 8192 ? 256 : 128;
        const std::uint32_t cat = threshold == 8192 ? 128 : 64;
        for (AttackMode mode : {AttackMode::Heavy, AttackMode::Medium,
                                AttackMode::Light}) {
            table.addRow(
                {std::to_string(threshold / 1024) + "K",
                 attackModeName(mode),
                 TextTable::pct(
                     meanEto(runner, mode,
                             mkScheme(SchemeKind::Sca, sca, 0,
                                      threshold),
                             kernels),
                     3),
                 TextTable::pct(
                     meanEto(runner, mode,
                             mkScheme(SchemeKind::Prcat, cat, 11,
                                      threshold),
                             kernels),
                     3),
                 TextTable::pct(
                     meanEto(runner, mode,
                             mkScheme(SchemeKind::Drcat, cat, 11,
                                      threshold),
                             kernels),
                     3)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper): heavier attacks -> higher "
                 "ETO; SCA worst (up to ~4.5% at T=16K Heavy), CAT "
                 "variants < 0.9%; T=8K lower than 16K because the "
                 "counter count doubles.\n";
    return 0;
}
