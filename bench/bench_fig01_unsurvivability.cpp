/**
 * @file
 * Fig 1 - PRA 5-year unsurvivability for refresh thresholds 32K, 24K,
 * 16K and 8K as the refresh probability p sweeps 0.001..0.006, with
 * the Chipkill 1e-4 bar; plus the Section III-A Monte-Carlo result
 * showing what an LFSR-based PRNG does to PRA.
 */

#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "reliability/montecarlo.hpp"
#include "reliability/unsurvivability.hpp"
#include "sim/checkpoint.hpp"
#include "bench_common.hpp"

using namespace catsim;

int
main()
{
    benchBanner("Fig 1: PRA unsurvivability (5 years)", 1.0);

    // Crash safety: with CATSIM_CHECKPOINT=dir the Monte-Carlo section
    // journals each trial batch; a killed run resumes from the journal
    // and prints byte-identical output.
    std::unique_ptr<CheckpointJournal> journal;
    const std::string ckptDir = checkpointDirFromEnv();
    if (!ckptDir.empty())
        journal =
            std::make_unique<CheckpointJournal>(ckptDir, "fig01-mc-v1");

    // Paper setting: "Assuming mild row accesses during refresh
    // intervals, we set Q0 to 10, 15, 20, and 40" for T = 32K..8K.
    const std::uint32_t thresholds[] = {32768, 24576, 16384, 8192};
    const double q0s[] = {10.0, 15.0, 20.0, 40.0};

    TextTable table({"p", "T=32k(Q0=10)", "T=24k(Q0=15)",
                     "T=16k(Q0=20)", "T=8k(Q0=40)", "beats Chipkill"});
    for (double p = 0.001; p <= 0.0061; p += 0.001) {
        std::vector<std::string> row{TextTable::fixed(p, 3)};
        int beats = 0;
        for (int i = 0; i < 4; ++i) {
            const double u =
                praUnsurvivability(thresholds[i], p, q0s[i], 5.0);
            beats += u < kChipkillUnsurvivability;
            row.push_back(TextTable::sci(u, 2));
            // Reference-guard the analytic curve at one p per column.
            if (p > 0.0049 && p < 0.0051)
                benchMetric("unsurvivability_p005_T"
                                + std::to_string(thresholds[i]),
                            u);
        }
        row.push_back(std::to_string(beats) + "/4");
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nChipkill reference: "
              << TextTable::sci(kChipkillUnsurvivability, 1) << "\n";

    std::cout << "\nMinimum safe p per threshold (paper Section "
                 "VIII-C choices in parentheses):\n";
    TextTable minp({"T", "min safe p", "paper uses"});
    const char *paperP[] = {"0.001", "-", "0.003", "0.005"};
    const std::uint32_t ts[] = {65536, 32768, 16384, 8192};
    const double qs[] = {10.0, 10.0, 20.0, 40.0};
    const char *pp[] = {"0.001", "0.002", "0.003", "0.005"};
    (void)paperP;
    for (int i = 0; i < 4; ++i) {
        minp.addRow({std::to_string(ts[i]),
                     TextTable::fixed(
                         minimumSafeProbability(ts[i], qs[i], 5.0), 4),
                     pp[i]});
    }
    minp.print(std::cout);

    // Section III-A Monte-Carlo: LFSR-based PRNG vs true PRNG, as a
    // resumable batched campaign (one journaled record per batch).
    std::cout << "\nMonte-Carlo, T=16K p=0.005 (Section III-A):\n";
    TextTable mc({"PRNG", "window failure prob",
                  "unsurvivability after 25 intervals (Q0=20)"});
    {
        McCampaignSpec spec;
        spec.prng = McCampaignSpec::Prng::True;
        spec.seed = 2024;
        const auto r = praWindowFailuresResumable(spec, journal.get());
        mc.addRow({"true-prng", TextTable::sci(r.windowFailureProb, 2),
                   TextTable::sci(r.unsurvivabilityAfter(20.0, 25.0),
                                  2)});
        benchMetric("mc_window_failure_true_prng", r.windowFailureProb);
    }
    {
        // p=0.005 uses 8-bit draws whose only accepting word is zero;
        // a maximal 8-bit LFSR never emits 8 consecutive zeros.
        McCampaignSpec spec;
        spec.prng = McCampaignSpec::Prng::Lfsr;
        spec.lfsrWidth = 8;
        spec.seed = 0xAB;
        const auto r = praWindowFailuresResumable(spec, journal.get());
        mc.addRow({"lfsr-prng", TextTable::sci(r.windowFailureProb, 2),
                   TextTable::sci(r.unsurvivabilityAfter(20.0, 25.0),
                                  2)});
        benchMetric("mc_window_failure_lfsr_prng", r.windowFailureProb);
    }
    mc.print(std::cout);
    std::cout << "\nExpected shape: unsurvivability rises exponentially "
                 "as T shrinks; the LFSR PRNG ruins PRA reliability.\n";
    return 0;
}
