/**
 * @file
 * Fig 10 - CMRPO sensitivity of DRCAT to the number of counters
 * (32..512) and the maximum tree depth (6..14), against SCA with the
 * same counter count, for T=32K and T=16K.  Values are means over the
 * 18-workload suite (the paper plots the same aggregation).
 *
 * Expected shape: with few counters, refresh energy dominates and
 * deeper trees help; with many counters, static power dominates and
 * depth is inconsequential; the minimum sits near DRCAT_64/L11.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

double
meanCmrpo(ExperimentRunner &runner, const SchemeConfig &cfg)
{
    RunningStat stat;
    for (const auto &profile : workloadSuite()) {
        WorkloadSpec w;
        w.name = profile.name;
        stat.add(
            runner.evalCmrpo(SystemPreset::DualCore2Ch, w, cfg).cmrpo);
    }
    return stat.mean();
}

void
figure(ExperimentRunner &runner, std::uint32_t threshold)
{
    std::cout << "--- T = " << threshold / 1024 << "K ---\n";
    TextTable table({"M", "SCA", "L6", "L7", "L8", "L9", "L10", "L11",
                     "L12", "L13", "L14"});
    for (std::uint32_t m : {32u, 64u, 128u, 256u, 512u}) {
        std::uint32_t logM = 0;
        for (std::uint32_t v = m; v > 1; v >>= 1)
            ++logM;
        std::vector<std::string> row{TextTable::num(m)};
        row.push_back(TextTable::pct(
            meanCmrpo(runner, mkScheme(SchemeKind::Sca, m, 0,
                                       threshold)),
            2));
        for (std::uint32_t L = 6; L <= 14; ++L) {
            if (L < logM + 1) {
                row.push_back("-");
                continue;
            }
            row.push_back(TextTable::pct(
                meanCmrpo(runner, mkScheme(SchemeKind::Drcat, m, L,
                                           threshold)),
                2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    const double scale = benchScale();
    benchBanner("Fig 10: DRCAT counters x depth sensitivity", scale);
    ExperimentRunner runner(scale);
    figure(runner, 32768);
    figure(runner, 16384);
    return 0;
}
