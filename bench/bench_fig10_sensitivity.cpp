/**
 * @file
 * Fig 10 - CMRPO sensitivity of DRCAT to the number of counters
 * (32..512) and the maximum tree depth (6..14), against SCA with the
 * same counter count, for T=32K and T=16K.  Values are means over the
 * 18-workload suite (the paper plots the same aggregation).
 *
 * The whole figure is one sweep grid (configs x 18 workloads)
 * evaluated in parallel by SweepRunner; per-config means are
 * reassembled in table order, so the printed numbers match the old
 * serial loops bit for bit at any CATSIM_JOBS.
 *
 * Expected shape: with few counters, refresh energy dominates and
 * deeper trees help; with many counters, static power dominates and
 * depth is inconsequential; the minimum sits near DRCAT_64/L11.
 */

#include <iostream>
#include <iterator>
#include <utility>

#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

void
figure(SweepRunner &sweep, std::uint32_t threshold)
{
    std::cout << "--- T = " << threshold / 1024 << "K ---\n";

    const std::uint32_t counters[] = {32, 64, 128, 256, 512};

    // Collect every scheme config once, remembering where each one
    // lands in the table (column 1 = SCA, 2.. = L6..L14); cells with
    // no config keep the "-" placeholder.
    std::vector<SchemeConfig> configs;
    std::vector<std::pair<std::size_t, std::size_t>> slots;
    std::vector<std::vector<std::string>> rows(
        std::size(counters), std::vector<std::string>(11, "-"));
    for (std::size_t r = 0; r < std::size(counters); ++r) {
        const std::uint32_t m = counters[r];
        rows[r][0] = TextTable::num(m);
        configs.push_back(mkScheme(SchemeKind::Sca, m, 0, threshold));
        slots.emplace_back(r, 1);
        for (std::uint32_t L = 6; L <= 14; ++L) {
            if (L < AddressMapper::log2u(m) + 1)
                continue;
            configs.push_back(
                mkScheme(SchemeKind::Drcat, m, L, threshold));
            slots.emplace_back(r, 2 + (L - 6));
        }
    }

    const std::vector<double> means = suiteMeanCmrpo(sweep, configs);
    for (std::size_t i = 0; i < means.size(); ++i) {
        rows[slots[i].first][slots[i].second] =
            TextTable::pct(means[i], 2);
        // Track the headline columns across PRs: SCA and the paper's
        // L=11 depth for every counter count.
        if (configs[i].kind == SchemeKind::Sca
            || configs[i].maxLevels == 11)
            benchMetric("cmrpo_mean_T"
                            + std::to_string(threshold / 1024) + "K_"
                            + configs[i].label()
                            + (configs[i].kind == SchemeKind::Sca
                                   ? ""
                                   : "_L11"),
                        means[i]);
    }

    TextTable table({"M", "SCA", "L6", "L7", "L8", "L9", "L10", "L11",
                     "L12", "L13", "L14"});
    for (auto &row : rows)
        table.addRow(std::move(row));
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Fig 10: DRCAT counters x depth sensitivity", scale,
                sweep.jobs());
    figure(sweep, 32768);
    figure(sweep, 16384);
    return 0;
}
