/**
 * @file
 * Shared helpers for the figure/table bench binaries.
 */

#ifndef CATSIM_BENCH_BENCH_COMMON_HPP
#define CATSIM_BENCH_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace catsim
{

/**
 * Experiment scale for bench binaries: CATSIM_SCALE when set,
 * otherwise 0.2 (about one fifth of a real 64 ms refresh interval with
 * the refresh threshold co-scaled - see docs/DESIGN.md Section 7).  Set
 * CATSIM_SCALE=1.0 for full-interval runs.
 */
inline double
benchScale()
{
    const char *env = std::getenv("CATSIM_SCALE");
    if (!env)
        return 0.2;
    return experimentScale();
}

/** Print the standard bench banner. */
inline void
benchBanner(const std::string &what, double scale, std::size_t jobs = 0)
{
    std::cout << "### " << what << '\n'
              << "### catsim reproduction of Seyedzadeh et al., "
                 "\"Mitigating Wordline Crosstalk using Adaptive Trees "
                 "of Counters\", ISCA 2018\n"
              << "### experiment scale s=" << scale
              << " (CATSIM_SCALE to change; s<1 co-scales epoch length "
                 "and refresh threshold)\n";
    if (jobs > 0)
        std::cout << "### sweep jobs=" << jobs
                  << " (CATSIM_JOBS to change; results are identical "
                     "at any job count)\n";
    std::cout << '\n';
}

/**
 * Mean CMRPO for each scheme config over a list of workload names,
 * evaluated as one parallel sweep grid.  means[i] belongs to
 * configs[i]; workloads accumulate in the given order, so the means
 * are bit-identical to the serial per-config loops they replace.  The
 * single cell builder shared by every config x workload CMRPO grid.
 */
inline std::vector<double>
meanCmrpoPerConfig(SweepRunner &sweep,
                   const std::vector<SchemeConfig> &configs,
                   const std::vector<std::string> &workloads,
                   SystemPreset preset = SystemPreset::DualCore2Ch)
{
    std::vector<SweepCell> cells;
    cells.reserve(configs.size() * workloads.size());
    for (const auto &cfg : configs) {
        for (const auto &w : workloads) {
            SweepCell c;
            c.preset = preset;
            c.workload.name = w;
            c.scheme = cfg;
            cells.push_back(c);
        }
    }
    const auto results = sweep.runCmrpo(cells);
    std::vector<double> means(configs.size());
    std::size_t i = 0;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        RunningStat stat;
        for (std::size_t w = 0; w < workloads.size(); ++w)
            stat.add(results[i++].cmrpo);
        means[c] = stat.mean();
    }
    return means;
}

/** Mean CMRPO per config over the full 18-workload suite. */
inline std::vector<double>
suiteMeanCmrpo(SweepRunner &sweep,
               const std::vector<SchemeConfig> &configs,
               SystemPreset preset = SystemPreset::DualCore2Ch)
{
    std::vector<std::string> names;
    for (const auto &profile : workloadSuite())
        names.push_back(profile.name);
    return meanCmrpoPerConfig(sweep, configs, names, preset);
}

/**
 * Emit a machine-readable result metric.  run_benches.sh collects
 * every `@@METRIC <name> <value>` line from a bench's log into the
 * "metrics" object of its BENCH_<name>.json, so per-figure result
 * values (mean CMRPO/ETO per scheme) are tracked across PRs alongside
 * wall time.  @p name must be space-free; spaces are replaced.
 */
inline void
benchMetric(std::string name, double value)
{
    for (char &c : name)
        if (c == ' ' || c == '\t' || c == '"')
            c = '_';
    std::ostringstream os;
    os << "@@METRIC " << name << ' ' << std::setprecision(10) << value;
    std::cout << os.str() << '\n';
}

/** Scheme shorthand used by several figures. */
inline SchemeConfig
mkScheme(SchemeKind kind, std::uint32_t counters, std::uint32_t levels,
         std::uint32_t threshold, double p = 0.002)
{
    SchemeConfig cfg;
    cfg.kind = kind;
    cfg.numCounters = counters;
    cfg.maxLevels = levels;
    cfg.threshold = threshold;
    cfg.praProbability = p;
    return cfg;
}

/** PRA probability the paper pairs with each refresh threshold. */
inline double
praProbabilityFor(std::uint32_t threshold)
{
    switch (threshold) {
      case 65536: return 0.001;
      case 32768: return 0.002;
      case 16384: return 0.003;
      case 8192: return 0.005;
      default: return 0.002;
    }
}

} // namespace catsim

#endif // CATSIM_BENCH_BENCH_COMMON_HPP
