/**
 * @file
 * Ablation - how much do the Section IV-D split thresholds matter?
 *
 * docs/DESIGN.md Section 4 calls out the split-threshold schedule as the
 * CAT design choice with the least published detail.  This bench
 * compares three schedules for DRCAT_64/L11 on the full workload
 * suite:
 *   paper    - the calibrated/generic schedule from Section IV-D
 *              (T/2 last, 2^(1/3) ratio, halved first)
 *   eager    - all split thresholds = T/16 (split as soon as possible)
 *   lazy     - all split thresholds = T/2 (split late, near refresh)
 * measuring victim rows refreshed per bank per epoch and the mean
 * CMRPO (the latter through SchemeConfig::splitThresholds, which the
 * runner co-scales with T).
 *
 * Both metrics run as SweepRunner grids: the victim-row replays as
 * (schedule x 18 workloads) runMetric cells tagged with the schedule,
 * the CMRPO means as the usual scheme-config grid.  Per-schedule means
 * accumulate in suite order, so the victim-row numbers match the old
 * serial loops bit for bit at any CATSIM_JOBS.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cat_tree.hpp"
#include "core/split_thresholds.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

enum class Schedule
{
    Paper,
    Eager,
    Lazy,
};

constexpr Schedule kSchedules[] = {Schedule::Paper, Schedule::Eager,
                                   Schedule::Lazy};

std::vector<std::uint32_t>
makeSchedule(Schedule kind, std::uint32_t M, std::uint32_t L,
             std::uint32_t T)
{
    switch (kind) {
      case Schedule::Paper:
        return computeSplitThresholds(M, L, T);
      case Schedule::Eager: {
        std::vector<std::uint32_t> thr(L, std::max(T / 16, 2u));
        thr[L - 1] = T;
        return thr;
      }
      case Schedule::Lazy: {
        std::vector<std::uint32_t> thr(L, T / 2);
        thr[L - 1] = T;
        return thr;
      }
    }
    return {};
}

/** Victim rows per bank per epoch for one (schedule, workload) cell:
 *  replay the cached baseline streams through a custom-schedule CAT. */
double
victimRowsMetric(ExperimentRunner &runner, const SweepCell &cell)
{
    const std::uint32_t T = runner.scaledThreshold(32768);
    const auto &base =
        runner.baseline(SystemPreset::DualCore2Ch, cell.workload);
    const double norm =
        static_cast<double>(base.bankStreams.size())
        * std::max<double>(1.0, static_cast<double>(base.epochs));
    const RowAddr rows =
        makeSystem(SystemPreset::DualCore2Ch).geometry.rowsPerBank;

    CatTree::Params p;
    p.numRows = rows;
    p.numCounters = 64;
    p.maxLevels = 11;
    p.refreshThreshold = T;
    p.splitThresholds = makeSchedule(
        static_cast<Schedule>(cell.tag), 64, 11, T);
    p.enableWeights = true;

    Count victims = 0;
    for (const auto &stream : base.bankStreams) {
        CatTree tree(p);
        for (const RowAddr r : stream) {
            if (r == kEpochMarker) {
                tree.resetCountsOnly();
                continue;
            }
            victims += tree.access(r).rowsRefreshed;
        }
    }
    return static_cast<double>(victims) / norm;
}

const char *
scheduleName(Schedule s)
{
    switch (s) {
      case Schedule::Paper: return "paper";
      case Schedule::Eager: return "eager";
      case Schedule::Lazy: return "lazy";
    }
    return "?";
}

} // namespace

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Ablation: split-threshold schedules (DRCAT_64/L11)",
                scale, sweep.jobs());

    const auto &suite = workloadSuite();

    // Grid 1: victim rows / bank / epoch, schedule-major then suite
    // order (the accumulation order of the old serial loops).
    std::vector<SweepCell> rowCells;
    rowCells.reserve(std::size(kSchedules) * suite.size());
    for (const Schedule s : kSchedules) {
        for (const auto &profile : suite) {
            SweepCell c;
            c.workload.name = profile.name;
            c.tag = static_cast<std::uint64_t>(s);
            rowCells.push_back(c);
        }
    }
    const auto victims = sweep.runMetric(rowCells, victimRowsMetric);

    // Grid 2: mean CMRPO per schedule via custom-schedule DRCAT
    // configs (built from the paper threshold; the runner co-scales).
    std::vector<SchemeConfig> configs;
    for (const Schedule s : kSchedules) {
        SchemeConfig cfg = mkScheme(SchemeKind::Drcat, 64, 11, 32768);
        cfg.splitThresholds = makeSchedule(s, 64, 11, 32768);
        configs.push_back(std::move(cfg));
    }
    const std::vector<double> cmrpoMeans =
        suiteMeanCmrpo(sweep, configs);

    std::vector<RunningStat> rowsPerSchedule(std::size(kSchedules));
    std::size_t idx = 0;
    for (std::size_t s = 0; s < std::size(kSchedules); ++s)
        for (std::size_t w = 0; w < suite.size(); ++w)
            rowsPerSchedule[s].add(victims[idx++]);

    TextTable table({"schedule", "victim rows / bank / epoch",
                     "vs paper", "mean CMRPO"});
    for (std::size_t s = 0; s < std::size(kSchedules); ++s) {
        const char *name = scheduleName(kSchedules[s]);
        table.addRow(
            {std::string(name)
                 + (kSchedules[s] == Schedule::Paper
                        ? " (Section IV-D)"
                        : kSchedules[s] == Schedule::Eager
                            ? " (all T/16)"
                            : "  (all T/2)"),
             TextTable::fixed(rowsPerSchedule[s].mean(), 1),
             TextTable::fixed(rowsPerSchedule[s].mean()
                                  / rowsPerSchedule[0].mean(),
                              2),
             TextTable::pct(cmrpoMeans[s], 2)});
        benchMetric(std::string("victim_rows_per_bank_epoch_") + name,
                    rowsPerSchedule[s].mean());
        benchMetric(std::string("cmrpo_mean_") + name, cmrpoMeans[s]);
    }
    table.print(std::cout);

    std::cout << "\nReading: eager splitting burns counters on groups "
                 "that never turn hot (so late hot spots refresh "
                 "coarsely); lazy splitting leaves hot rows in big "
                 "groups longer.  The paper's staged schedule balances "
                 "the two.\n";
    return 0;
}
