/**
 * @file
 * Ablation - how much do the Section IV-D split thresholds matter?
 *
 * docs/DESIGN.md Section 4 calls out the split-threshold schedule as the
 * CAT design choice with the least published detail.  This bench
 * compares three schedules for DRCAT_64/L11 on the full workload
 * suite:
 *   paper    - the calibrated/generic schedule from Section IV-D
 *              (T/2 last, 2^(1/3) ratio, halved first)
 *   eager    - all split thresholds = T/16 (split as soon as possible)
 *   lazy     - all split thresholds = T/2 (split late, near refresh)
 * measuring victim rows refreshed per bank per epoch and the CMRPO.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cat_tree.hpp"
#include "core/split_thresholds.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

enum class Schedule
{
    Paper,
    Eager,
    Lazy,
};

std::vector<std::uint32_t>
makeSchedule(Schedule kind, std::uint32_t M, std::uint32_t L,
             std::uint32_t T)
{
    switch (kind) {
      case Schedule::Paper:
        return computeSplitThresholds(M, L, T);
      case Schedule::Eager: {
        std::vector<std::uint32_t> thr(L, std::max(T / 16, 2u));
        thr[L - 1] = T;
        return thr;
      }
      case Schedule::Lazy: {
        std::vector<std::uint32_t> thr(L, T / 2);
        thr[L - 1] = T;
        return thr;
      }
    }
    return {};
}

/** Replay one bank stream through a CAT with a custom schedule. */
Count
replayRows(const std::vector<std::vector<RowAddr>> &streams,
           const std::vector<std::uint32_t> &schedule, std::uint32_t T,
           RowAddr rows)
{
    Count victims = 0;
    for (const auto &stream : streams) {
        CatTree::Params p;
        p.numRows = rows;
        p.numCounters = 64;
        p.maxLevels = 11;
        p.refreshThreshold = T;
        p.splitThresholds = schedule;
        p.enableWeights = true;
        CatTree tree(p);
        for (const RowAddr r : stream) {
            if (r == kEpochMarker) {
                tree.resetCountsOnly();
                continue;
            }
            victims += tree.access(r).rowsRefreshed;
        }
    }
    return victims;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    benchBanner("Ablation: split-threshold schedules (DRCAT_64/L11)",
                scale);
    ExperimentRunner runner(scale);
    const std::uint32_t T = runner.scaledThreshold(32768);

    RunningStat rowsPaper, rowsEager, rowsLazy;
    for (const auto &profile : workloadSuite()) {
        WorkloadSpec w;
        w.name = profile.name;
        const auto &base =
            runner.baseline(SystemPreset::DualCore2Ch, w);
        const double norm =
            static_cast<double>(base.bankStreams.size())
            * std::max<double>(1.0, static_cast<double>(base.epochs));
        const RowAddr rows =
            makeSystem(SystemPreset::DualCore2Ch).geometry.rowsPerBank;
        rowsPaper.add(replayRows(base.bankStreams,
                                 makeSchedule(Schedule::Paper, 64, 11,
                                              T),
                                 T, rows)
                      / norm);
        rowsEager.add(replayRows(base.bankStreams,
                                 makeSchedule(Schedule::Eager, 64, 11,
                                              T),
                                 T, rows)
                      / norm);
        rowsLazy.add(replayRows(base.bankStreams,
                                makeSchedule(Schedule::Lazy, 64, 11,
                                             T),
                                T, rows)
                     / norm);
    }

    TextTable table({"schedule", "victim rows / bank / epoch",
                     "vs paper"});
    auto row = [&](const char *name, const RunningStat &s) {
        table.addRow({name, TextTable::fixed(s.mean(), 1),
                      TextTable::fixed(s.mean() / rowsPaper.mean(),
                                       2)});
    };
    row("paper (Section IV-D)", rowsPaper);
    row("eager (all T/16)", rowsEager);
    row("lazy  (all T/2)", rowsLazy);
    table.print(std::cout);

    std::cout << "\nReading: eager splitting burns counters on groups "
                 "that never turn hot (so late hot spots refresh "
                 "coarsely); lazy splitting leaves hot rows in big "
                 "groups longer.  The paper's staged schedule balances "
                 "the two.\n";
    return 0;
}
