/**
 * @file
 * Fig 14 (beyond the paper) - CMRPO under *adaptive* attackers.
 *
 * The paper's Section VIII-D kernels are static: targets are chosen
 * once and hammered blindly.  Modern attacks adapt - TRRespass-style
 * attackers observe the defense's refresh behaviour and re-aim.  This
 * bench drives every scheme with three closed-loop attacker families
 * through the ActivationSource pipeline (no recorded baselines):
 *
 *   Static       fixed Gaussian targets per bank (paper's kernels,
 *                replayed through the closed-loop engine)
 *   MultiBank    one target set synchronized across all 16 banks
 *   RefreshAware rotates an aggressor to a fresh row whenever the
 *                defense refreshes victims around it
 *
 * Expected shape: exact per-row counting (CounterCache) is largely
 * insensitive to re-aiming, while tree/group schemes that concentrate
 * counters on learned hot locations (PRCAT/DRCAT) pay much more
 * refresh power against the refresh-aware attacker - each re-aim
 * lands in a coarse region whose whole span must be refreshed on
 * trigger.  PRA is memoryless, so adaptation gains nothing.
 */

#include <iostream>

#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

/** Kernels averaged per cell (env CATSIM_ATTACK_KERNELS, default 3). */
std::uint64_t
kernelCount()
{
    const char *env = std::getenv("CATSIM_ATTACK_KERNELS");
    if (!env)
        return 3;
    const long v = std::atol(env);
    return v >= 1 && v <= 12 ? static_cast<std::uint64_t>(v) : 3;
}

} // namespace

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Fig 14: CMRPO under adaptive (closed-loop) attackers",
                scale, sweep.jobs());
    const std::uint64_t kernels = kernelCount();
    std::cout << "averaging over " << kernels
              << " target placements per cell (CATSIM_ATTACK_KERNELS)"
              << "\n\n";

    const AttackerKind attackers[] = {AttackerKind::Static,
                                      AttackerKind::MultiBank,
                                      AttackerKind::RefreshAware};
    const std::uint32_t threshold = 32768;
    const SchemeConfig schemes[] = {
        mkScheme(SchemeKind::CounterCache, 2048, 0, threshold),
        mkScheme(SchemeKind::Prcat, 64, 11, threshold),
        mkScheme(SchemeKind::Drcat, 64, 11, threshold),
        mkScheme(SchemeKind::Pra, 0, 0, threshold,
                 praProbabilityFor(threshold)),
    };
    const char *schemeNames[] = {"CC", "PRCAT", "DRCAT", "PRA"};

    // One flat closed-loop grid: attacker rows x scheme columns x
    // `kernels` placements per cell.
    std::vector<AdaptiveCell> cells;
    for (AttackerKind attacker : attackers) {
        for (const SchemeConfig &cfg : schemes) {
            for (std::uint64_t k = 1; k <= kernels; ++k) {
                AdaptiveCell c;
                c.preset = SystemPreset::DualCore2Ch;
                c.attack.attacker = attacker;
                c.attack.mode = AttackMode::Medium;
                c.attack.kernel = k;
                c.scheme = cfg;
                cells.push_back(c);
            }
        }
    }

    const std::vector<EvalResult> results = sweep.runAdaptive(cells);

    TextTable table({"attacker", "CC", "PRCAT", "DRCAT", "PRA"});
    // means[attacker][scheme], folded from cell-indexed results.
    double means[3][4] = {};
    std::size_t idx = 0;
    for (int a = 0; a < 3; ++a) {
        std::vector<std::string> row{attackerKindName(attackers[a])};
        for (int s = 0; s < 4; ++s) {
            RunningStat stat;
            for (std::uint64_t k = 1; k <= kernels; ++k)
                stat.add(results[idx++].cmrpo);
            means[a][s] = stat.mean();
            row.push_back(TextTable::pct(stat.mean(), 2));
            benchMetric("cmrpo_mean_"
                            + std::string(
                                attackerKindName(attackers[a]))
                            + "_" + schemeNames[s],
                        stat.mean());
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    // The adaptive gain: how much more mitigation power the
    // refresh-aware attacker extracts than the static kernels.
    std::cout << "\nrefresh-aware / static CMRPO ratio per scheme:\n";
    for (int s = 0; s < 4; ++s) {
        const double gain =
            means[0][s] > 0.0 ? means[2][s] / means[0][s] : 0.0;
        std::cout << "  " << schemeNames[s] << ": "
                  << TextTable::fixed(gain, 2) << "x\n";
        benchMetric("adaptive_gain_" + std::string(schemeNames[s]),
                    gain);
    }
    // Per-bank CMRPO cannot distinguish MultiBank from Static: every
    // scheme instance watches one bank, and synchronizing target
    // placement across banks changes no single bank's stream
    // statistics (the identical rows above demonstrate it).  The
    // coordination shows up in the *timing* path instead - all banks
    // trigger victim refreshes in the same window - so that leg is
    // measured as ETO through the full open-loop timing pipeline.
    std::cout << "\nETO through the timing path (kernel 1, Medium):\n";
    std::vector<SweepCell> etoCells;
    for (AttackKernelKind kind : {AttackKernelKind::Gaussian,
                                  AttackKernelKind::MultiBank}) {
        for (int s = 1; s <= 2; ++s) { // PRCAT, DRCAT
            SweepCell c;
            c.preset = SystemPreset::DualCore2Ch;
            c.workload.name = "comm2";
            c.workload.isAttack = true;
            c.workload.attackMode = AttackMode::Medium;
            c.workload.attackKernel = 1;
            c.workload.attackKernelKind = kind;
            c.scheme = schemes[s];
            etoCells.push_back(c);
        }
    }
    const std::vector<double> etos = sweep.runEto(etoCells);

    TextTable etoTable({"kernel placement", "PRCAT", "DRCAT"});
    idx = 0;
    for (AttackKernelKind kind : {AttackKernelKind::Gaussian,
                                  AttackKernelKind::MultiBank}) {
        std::vector<std::string> row{attackKernelKindName(kind)};
        for (int s = 1; s <= 2; ++s) {
            row.push_back(TextTable::pct(etos[idx], 3));
            benchMetric("eto_"
                            + std::string(attackKernelKindName(kind))
                            + "_" + schemeNames[s],
                        etos[idx]);
            ++idx;
        }
        etoTable.addRow(std::move(row));
    }
    etoTable.print(std::cout);

    // Attacker-success complement (PR 4 follow-on): the defense-cost
    // grids above say what mitigation *costs*; this says what the
    // attacker *achieved* - the maximum activations any row
    // accumulated before a refresh covered its victims, as a fraction
    // of the (scaled) refresh threshold.  Deterministic schemes pin
    // this at ~1.0 by construction; PRA's probabilistic gap lets a
    // flat-out hammer overshoot.
    std::cout << "\nmax inter-refresh disturbance / threshold "
                 "(kernel 1, Medium):\n";
    std::vector<AdaptiveCell> disturbCells;
    for (AttackerKind attacker : attackers) {
        for (const SchemeConfig &cfg : schemes) {
            AdaptiveCell c;
            c.preset = SystemPreset::DualCore2Ch;
            c.attack.attacker = attacker;
            c.attack.mode = AttackMode::Medium;
            c.attack.kernel = 1;
            c.scheme = cfg;
            disturbCells.push_back(c);
        }
    }
    const std::vector<double> disturb = sweep.runAdaptiveMetric(
        disturbCells,
        [](ExperimentRunner &r, const AdaptiveCell &c) {
            return r.evalAdaptiveDisturbance(c.preset, c.attack,
                                             c.scheme);
        });

    TextTable disturbTable({"attacker", "CC", "PRCAT", "DRCAT", "PRA"});
    idx = 0;
    for (int a = 0; a < 3; ++a) {
        std::vector<std::string> row{attackerKindName(attackers[a])};
        for (int s = 0; s < 4; ++s) {
            row.push_back(TextTable::fixed(disturb[idx], 3));
            benchMetric("disturb_max_"
                            + std::string(
                                attackerKindName(attackers[a]))
                            + "_" + schemeNames[s],
                        disturb[idx]);
            ++idx;
        }
        disturbTable.addRow(std::move(row));
    }
    disturbTable.print(std::cout);

    std::cout << "\nExpected shape: re-aiming defeats learned counter "
                 "placement (PRCAT/DRCAT pay multiples of their "
                 "static-attack CMRPO; each rotated aggressor lands "
                 "in a coarse tree region), exact per-row counting "
                 "(CC) is nearly insensitive, and memoryless PRA "
                 "gains nothing from adaptation; the disturbance "
                 "table shows every deterministic scheme holding the "
                 "attacker at the threshold while PRA does not.\n";

    // Closed-loop ETO (the event-engine stimulus path): unlike the
    // open-loop ETO table above - where the attacker is a recorded
    // trace that cannot react - every cell here runs two full timing
    // legs (baseline fleet vs mitigated fleet) with the attacker
    // hammering at the bank's maximum ACT rate, and RefreshAware
    // attackers re-aiming on the defense's observed refreshes while
    // the clock runs.  This is the slowdown an adaptive attacker
    // actually inflicts, not the one a frozen stream would.
    std::cout << "\nclosed-loop ETO through the stimulus timing "
                 "path (kernel 1, Medium):\n";
    std::vector<AdaptiveCell> clEtoCells;
    for (AttackerKind attacker : attackers) {
        for (const SchemeConfig &cfg : schemes) {
            AdaptiveCell c;
            c.preset = SystemPreset::DualCore2Ch;
            c.attack.attacker = attacker;
            c.attack.mode = AttackMode::Medium;
            c.attack.kernel = 1;
            c.scheme = cfg;
            clEtoCells.push_back(c);
        }
    }
    const std::vector<double> clEtos = sweep.runAdaptiveEto(clEtoCells);

    TextTable clEtoTable({"attacker", "CC", "PRCAT", "DRCAT", "PRA"});
    idx = 0;
    for (int a = 0; a < 3; ++a) {
        std::vector<std::string> row{attackerKindName(attackers[a])};
        for (int s = 0; s < 4; ++s) {
            row.push_back(TextTable::pct(clEtos[idx], 3));
            benchMetric("adaptive_eto_"
                            + std::string(
                                attackerKindName(attackers[a]))
                            + "_" + schemeNames[s],
                        clEtos[idx]);
            ++idx;
        }
        clEtoTable.addRow(std::move(row));
    }
    clEtoTable.print(std::cout);

    std::cout << "\nExpected shape: a saturating hammer makes every "
                 "victim refresh a stall the bank cannot hide, so "
                 "closed-loop ETO exceeds the trace-driven table "
                 "above; RefreshAware re-aiming raises PRCAT/DRCAT "
                 "further (rotated aggressors trigger coarse-region "
                 "refreshes more often) while CC, which refreshes "
                 "exactly two victim rows per trigger, barely moves.\n";
    return 0;
}
