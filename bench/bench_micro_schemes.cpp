/**
 * @file
 * Microbenchmarks (google-benchmark) for the mitigation-scheme hot
 * paths: per-activation cost of SCA, PRA, PRCAT, DRCAT and the counter
 * cache, CAT tree traversal/growth, and the PRNG/Zipf substrates.
 * These support the paper's latency claims (Section VII-A: PRCAT
 * lookup is far cheaper than a DRAM row activation).  Also covers the
 * sweep engine: thread-pool dispatch overhead and a small end-to-end
 * SweepRunner grid.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/lfsr.hpp"
#include "core/factory.hpp"
#include "core/tree_bundle.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "sim/activation_sim.hpp"
#include "sim/sweep.hpp"
#include "core/cat_tree.hpp"
#include "core/counter_cache.hpp"
#include "core/drcat.hpp"
#include "core/pra.hpp"
#include "core/prcat.hpp"
#include "core/reference_cat_tree.hpp"
#include "core/sca.hpp"
#include "core/split_thresholds.hpp"

namespace catsim
{

namespace
{

constexpr RowAddr kRows = 65536;

/** Pre-generated skewed row stream shared by scheme benchmarks. */
const std::vector<RowAddr> &
rowStream()
{
    static const std::vector<RowAddr> stream = [] {
        std::vector<RowAddr> s;
        s.reserve(1 << 16);
        Xoshiro256StarStar rng(99);
        ZipfSampler zipf(kRows, 1.1);
        for (std::size_t i = 0; i < (1 << 16); ++i)
            s.push_back(static_cast<RowAddr>(zipf.sample(rng)
                                             * 2654435761ULL
                                             % kRows));
        return s;
    }();
    return stream;
}

template <typename SchemeT, typename... Args>
void
schemeBench(benchmark::State &state, Args &&...args)
{
    SchemeT scheme(kRows, std::forward<Args>(args)...);
    const auto &stream = rowStream();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            scheme.onActivate(stream[i & 0xFFFF]));
        ++i;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_ScaActivate(benchmark::State &state)
{
    schemeBench<Sca>(state,
                     static_cast<std::uint32_t>(state.range(0)),
                     32768u);
}
BENCHMARK(BM_ScaActivate)->Arg(64)->Arg(512);

void
BM_PraActivate(benchmark::State &state)
{
    schemeBench<Pra>(state, 0.002);
}
BENCHMARK(BM_PraActivate);

void
BM_PrcatActivate(benchmark::State &state)
{
    schemeBench<Prcat>(state,
                       static_cast<std::uint32_t>(state.range(0)),
                       11u, 32768u);
}
BENCHMARK(BM_PrcatActivate)->Arg(64)->Arg(512);

void
BM_DrcatActivate(benchmark::State &state)
{
    schemeBench<Drcat>(state,
                       static_cast<std::uint32_t>(state.range(0)),
                       11u, 32768u);
}
BENCHMARK(BM_DrcatActivate)->Arg(64)->Arg(512);

void
BM_CounterCacheActivate(benchmark::State &state)
{
    schemeBench<CounterCache>(state, 2048u, 8u, 32768u);
}
BENCHMARK(BM_CounterCacheActivate);

CatTree::Params
catParams(std::uint32_t M, std::uint32_t L, std::uint32_t T,
          bool weights = false)
{
    CatTree::Params p;
    p.numRows = kRows;
    p.numCounters = M;
    p.maxLevels = L;
    p.refreshThreshold = T;
    p.splitThresholds = computeSplitThresholds(M, L, T);
    p.enableWeights = weights;
    return p;
}

/**
 * CatTree::access on a replay-like skewed-random stream over a grown
 * tree - the walk the CMRPO figures spend their time in.  Instantiated
 * for both the flattened production tree and the frozen pointer-chasing
 * reference, so the Flat/Ref ratio IS the hot-path speedup (the PR 3
 * acceptance bar is Flat >= 3x Ref here).
 */
template <typename TreeT>
void
catTreeAccessBench(benchmark::State &state, bool weights)
{
    TreeT tree(catParams(64, 11, 32768, weights));
    const auto &stream = rowStream();
    for (std::size_t i = 0; i < (1 << 18); ++i)
        tree.access(stream[i & 0xFFFF]); // grow to steady state
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tree.access(stream[i & 0xFFFF]));
        ++i;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_CatTreeAccessFlat(benchmark::State &state)
{
    catTreeAccessBench<CatTree>(state, state.range(0) != 0);
}
BENCHMARK(BM_CatTreeAccessFlat)->Arg(0)->Arg(1);

void
BM_CatTreeAccessRef(benchmark::State &state)
{
    catTreeAccessBench<ReferenceCatTree>(state, state.range(0) != 0);
}
BENCHMARK(BM_CatTreeAccessRef)->Arg(0)->Arg(1);

constexpr std::uint32_t kBundleBanks = 16;
constexpr std::size_t kStreamLen = 1 << 16;

/** Per-bank skewed streams for the multi-bank bundle benchmarks. */
const std::vector<std::vector<RowAddr>> &
bankStreams()
{
    static const std::vector<std::vector<RowAddr>> streams = [] {
        std::vector<std::vector<RowAddr>> s(kBundleBanks);
        for (std::uint32_t b = 0; b < kBundleBanks; ++b) {
            Xoshiro256StarStar rng(1000 + b);
            ZipfSampler zipf(kRows, 1.1);
            s[b].reserve(kStreamLen);
            for (std::size_t i = 0; i < kStreamLen; ++i)
                s[b].push_back(static_cast<RowAddr>(
                    zipf.sample(rng) * 2654435761ULL % kRows));
        }
        return s;
    }();
    return streams;
}

/** 16-lane DRCAT bundle group via the factory (bundleWidth default). */
std::vector<std::unique_ptr<MitigationScheme>>
makeBundleGroup(std::uint32_t bundle_width)
{
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 64;
    cfg.maxLevels = 11;
    cfg.threshold = 32768;
    cfg.bundleWidth = bundle_width;
    return makeBankSchemes(cfg, kRows, kBundleBanks);
}

/**
 * TreeBundle::onActivateLanes over the 16-bank group - the vectorized
 * multi-bank hot path the group replay drives.  Items/sec here divided
 * by BM_CatTreeAccessFlat's is the SoA bundling speedup on top of
 * PR 3's single-tree flattening.
 */
void
BM_TreeBundleLanes(benchmark::State &state)
{
    const auto schemes = makeBundleGroup(0);
    TreeBundle *bundle = schemes[0]->bundleHint().bundle;
    const auto &streams = bankStreams();
    // Grow every lane to steady state before timing.
    for (std::uint32_t b = 0; b < kBundleBanks; ++b)
        bundle->onActivateBatch(b, streams[b].data(), kStreamLen);
    constexpr std::size_t kChunk = 4096;
    std::size_t off = 0;
    std::vector<TreeBundle::LaneBatch> batches(kBundleBanks);
    for (auto _ : state) {
        for (std::uint32_t b = 0; b < kBundleBanks; ++b)
            batches[b] = {b, streams[b].data() + off, kChunk};
        bundle->onActivateLanes(batches.data(), batches.size());
        off = (off + kChunk) & (kStreamLen - 1);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kBundleBanks * kChunk));
}
BENCHMARK(BM_TreeBundleLanes)->Unit(benchmark::kMicrosecond);

/** The same group as standalone trees stepped per bank - the
 *  pre-bundle replay inner loop, for the on-report comparison. */
void
BM_TreeBundleFlatBatch(benchmark::State &state)
{
    const auto schemes = makeBundleGroup(1);
    const auto &streams = bankStreams();
    for (std::uint32_t b = 0; b < kBundleBanks; ++b)
        schemes[b]->onActivateBatch(streams[b].data(), kStreamLen);
    constexpr std::size_t kChunk = 4096;
    std::size_t off = 0;
    for (auto _ : state) {
        for (std::uint32_t b = 0; b < kBundleBanks; ++b)
            schemes[b]->onActivateBatch(streams[b].data() + off,
                                        kChunk);
        off = (off + kChunk) & (kStreamLen - 1);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kBundleBanks * kChunk));
}
BENCHMARK(BM_TreeBundleFlatBatch)->Unit(benchmark::kMicrosecond);

/** Worst-case deep leaf: single-row hammer after full growth. */
template <typename TreeT>
void
catTreeHammerBench(benchmark::State &state)
{
    TreeT tree(catParams(64, 11, 32768));
    for (int i = 0; i < 40000; ++i)
        tree.access(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.access(42));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_CatTreeHammer(benchmark::State &state)
{
    catTreeHammerBench<CatTree>(state);
}
BENCHMARK(BM_CatTreeHammer);

void
BM_CatTreeHammerRef(benchmark::State &state)
{
    catTreeHammerBench<ReferenceCatTree>(state);
}
BENCHMARK(BM_CatTreeHammerRef);

/**
 * DRCAT refresh storm with many counters: a tiny threshold makes every
 * ~T-th access a weighted refresh, which costs the reference an O(M)
 * weight sweep plus a linear merge-candidate scan, vs. the flat tree's
 * lazy ordinal bump and candidate bitset.
 */
template <typename TreeT>
void
catTreeRefreshStormBench(benchmark::State &state)
{
    TreeT tree(catParams(512, 11, 512, true));
    Xoshiro256StarStar rng(7);
    for (std::size_t i = 0; i < (1 << 18); ++i)
        tree.access(rng.nextDouble() < 0.8
            ? 42
            : static_cast<RowAddr>(rng.nextBounded(kRows)));
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.access(42));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_CatTreeRefreshStormFlat(benchmark::State &state)
{
    catTreeRefreshStormBench<CatTree>(state);
}
BENCHMARK(BM_CatTreeRefreshStormFlat);

void
BM_CatTreeRefreshStormRef(benchmark::State &state)
{
    catTreeRefreshStormBench<ReferenceCatTree>(state);
}
BENCHMARK(BM_CatTreeRefreshStormRef);

void
BM_ReplayActivationsDrcat(benchmark::State &state)
{
    // End-to-end batched replay (chunked onActivateBatch) of one
    // marker-laced bank stream, the CMRPO evaluation inner loop.
    std::vector<std::vector<RowAddr>> streams(1);
    auto &s = streams[0];
    s.reserve(1 << 18);
    const auto &rows = rowStream();
    for (std::size_t i = 0; i < (1 << 18); ++i) {
        if (i % 50000 == 49999)
            s.push_back(kEpochMarker);
        else
            s.push_back(rows[i & 0xFFFF]);
    }
    SchemeConfig cfg;
    cfg.kind = SchemeKind::Drcat;
    cfg.numCounters = 64;
    cfg.maxLevels = 11;
    cfg.threshold = 1024;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            replayActivations(streams, cfg, kRows));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * static_cast<std::int64_t>(s.size())));
}
BENCHMARK(BM_ReplayActivationsDrcat)->Unit(benchmark::kMillisecond);

void
BM_CatTreeReset(benchmark::State &state)
{
    CatTree::Params p;
    p.numRows = kRows;
    p.numCounters = static_cast<std::uint32_t>(state.range(0));
    p.maxLevels = 14;
    p.refreshThreshold = 32768;
    p.splitThresholds =
        computeSplitThresholds(p.numCounters, 14, 32768);
    CatTree tree(p);
    for (auto _ : state)
        tree.reset();
}
BENCHMARK(BM_CatTreeReset)->Arg(64)->Arg(512);

void
BM_Xoshiro(benchmark::State &state)
{
    Xoshiro256StarStar rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

void
BM_LfsrNineBits(benchmark::State &state)
{
    Lfsr lfsr(16, 0xACE1);
    for (auto _ : state)
        benchmark::DoNotOptimize(lfsr.nextBits(9));
}
BENCHMARK(BM_LfsrNineBits);

void
BM_ZipfSample(benchmark::State &state)
{
    Xoshiro256StarStar rng(2);
    ZipfSampler zipf(kRows, 1.1);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

void
BM_ThreadPoolSubmitWait(benchmark::State &state)
{
    // Per-job dispatch cost of the sweep engine's queue: submit a
    // batch of trivial jobs and drain it.
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    ThreadPool pool(jobs);
    std::atomic<std::uint64_t> sink{0};
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            pool.submit([&sink] { sink.fetch_add(1); });
        pool.wait();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ThreadPoolSubmitWait)->Arg(1)->Arg(4);

void
BM_ParallelForOverhead(benchmark::State &state)
{
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    std::atomic<std::uint64_t> sink{0};
    for (auto _ : state) {
        parallelFor(
            256, [&sink](std::size_t i) { sink.fetch_add(i); }, jobs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4);

void
BM_SweepSmallGrid(benchmark::State &state)
{
    // End-to-end SweepRunner: 2 schemes x 2 workloads at a tiny
    // scale; cells share baselines through the shared-future cache.
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        SweepRunner sweep(0.02, jobs);
        std::vector<SweepCell> cells;
        for (const char *name : {"comm1", "swapt"}) {
            for (SchemeKind kind :
                 {SchemeKind::Drcat, SchemeKind::Sca}) {
                SweepCell c;
                c.workload.name = name;
                c.scheme.kind = kind;
                cells.push_back(c);
            }
        }
        benchmark::DoNotOptimize(sweep.runCmrpo(cells));
    }
}
BENCHMARK(BM_SweepSmallGrid)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/**
 * Wall-time @p pass (which runs @p acts_per_pass activations) after
 * two warm-up passes (tree growth to steady state), repeating until
 * at least ~0.4 s is measured; returns activations per second.
 */
template <typename Fn>
double
actsPerSec(Fn &&pass, Count acts_per_pass)
{
    pass();
    pass();
    using Clock = std::chrono::steady_clock;
    const auto t0 = Clock::now();
    double elapsed = 0.0;
    Count reps = 0;
    do {
        pass();
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - t0)
                      .count();
    } while (elapsed < 0.4);
    return static_cast<double>(reps * acts_per_pass) / elapsed;
}

/**
 * The tentpole's headline numbers as first-class @@METRIC lines,
 * collected into BENCH_bench_micro_schemes.json by run_benches.sh and
 * regression-gated by scripts/check_perf.py:
 *
 *   flat_acts_per_sec       PR 3's hot path: one virtual onActivate
 *                           per activation on standalone trees
 *   flatbatch_acts_per_sec  standalone trees stepped with per-bank
 *                           onActivateBatch chunks
 *   bundle_acts_per_sec     the 16-lane TreeBundle::onActivateLanes
 *                           arena path
 *
 * All three drive the identical 16-bank DRCAT_64 group over identical
 * per-bank Zipf streams, so the ratios isolate the API/layout change.
 */
void
emitBundleSpeedupMetrics()
{
    const auto &streams = bankStreams();
    constexpr Count kActsPerPass =
        static_cast<Count>(kBundleBanks) * kStreamLen;

    const auto flat = makeBundleGroup(1);
    const double flatRate = actsPerSec(
        [&] {
            for (std::uint32_t b = 0; b < kBundleBanks; ++b) {
                MitigationScheme &s = *flat[b];
                const RowAddr *rows = streams[b].data();
                for (std::size_t i = 0; i < kStreamLen; ++i)
                    s.onActivate(rows[i]);
            }
        },
        kActsPerPass);

    const auto flatBatch = makeBundleGroup(1);
    const double flatBatchRate = actsPerSec(
        [&] {
            for (std::uint32_t b = 0; b < kBundleBanks; ++b)
                flatBatch[b]->onActivateBatch(streams[b].data(),
                                              kStreamLen);
        },
        kActsPerPass);

    const auto bundled = makeBundleGroup(0);
    TreeBundle *bundle = bundled[0]->bundleHint().bundle;
    std::vector<TreeBundle::LaneBatch> batches(kBundleBanks);
    const double bundleRate = actsPerSec(
        [&] {
            for (std::uint32_t b = 0; b < kBundleBanks; ++b)
                batches[b] = {b, streams[b].data(), kStreamLen};
            bundle->onActivateLanes(batches.data(), batches.size());
        },
        kActsPerPass);

    // Which bundle kernel this host ran (2 = AVX-512, 1 = AVX2,
    // 0 = scalar); check_perf.py keys its speedup floors on it.
    std::printf("@@METRIC bundle_simd_tier %d\n",
                TreeBundle::simdTier());
    std::printf("@@METRIC flat_acts_per_sec %.6g\n", flatRate);
    std::printf("@@METRIC flatbatch_acts_per_sec %.6g\n",
                flatBatchRate);
    std::printf("@@METRIC bundle_acts_per_sec %.6g\n", bundleRate);
    std::printf("@@METRIC bundle_speedup_vs_flat %.4f\n",
                bundleRate / flatRate);
    std::printf("@@METRIC bundle_speedup_vs_flatbatch %.4f\n",
                bundleRate / flatBatchRate);
    std::fflush(stdout);
}

} // namespace
} // namespace catsim

int
main(int argc, char **argv)
{
    catsim::emitBundleSpeedupMetrics();

    // CATSIM_MICRO_FILTER narrows the google-benchmark suite when the
    // caller (run_benches.sh, CI) cannot pass --benchmark_filter.
    std::vector<char *> args(argv, argv + argc);
    std::string filterArg;
    if (const char *f = std::getenv("CATSIM_MICRO_FILTER")) {
        filterArg = std::string("--benchmark_filter=") + f;
        args.push_back(filterArg.data());
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
