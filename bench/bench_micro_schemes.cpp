/**
 * @file
 * Microbenchmarks (google-benchmark) for the mitigation-scheme hot
 * paths: per-activation cost of SCA, PRA, PRCAT, DRCAT and the counter
 * cache, CAT tree traversal/growth, and the PRNG/Zipf substrates.
 * These support the paper's latency claims (Section VII-A: PRCAT
 * lookup is far cheaper than a DRAM row activation).  Also covers the
 * sweep engine: thread-pool dispatch overhead and a small end-to-end
 * SweepRunner grid.
 */

#include <benchmark/benchmark.h>

#include <atomic>

#include "common/lfsr.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "sim/sweep.hpp"
#include "core/cat_tree.hpp"
#include "core/counter_cache.hpp"
#include "core/drcat.hpp"
#include "core/pra.hpp"
#include "core/prcat.hpp"
#include "core/sca.hpp"
#include "core/split_thresholds.hpp"

namespace catsim
{

namespace
{

constexpr RowAddr kRows = 65536;

/** Pre-generated skewed row stream shared by scheme benchmarks. */
const std::vector<RowAddr> &
rowStream()
{
    static const std::vector<RowAddr> stream = [] {
        std::vector<RowAddr> s;
        s.reserve(1 << 16);
        Xoshiro256StarStar rng(99);
        ZipfSampler zipf(kRows, 1.1);
        for (std::size_t i = 0; i < (1 << 16); ++i)
            s.push_back(static_cast<RowAddr>(zipf.sample(rng)
                                             * 2654435761ULL
                                             % kRows));
        return s;
    }();
    return stream;
}

template <typename SchemeT, typename... Args>
void
schemeBench(benchmark::State &state, Args &&...args)
{
    SchemeT scheme(kRows, std::forward<Args>(args)...);
    const auto &stream = rowStream();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            scheme.onActivate(stream[i & 0xFFFF]));
        ++i;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}

void
BM_ScaActivate(benchmark::State &state)
{
    schemeBench<Sca>(state,
                     static_cast<std::uint32_t>(state.range(0)),
                     32768u);
}
BENCHMARK(BM_ScaActivate)->Arg(64)->Arg(512);

void
BM_PraActivate(benchmark::State &state)
{
    schemeBench<Pra>(state, 0.002);
}
BENCHMARK(BM_PraActivate);

void
BM_PrcatActivate(benchmark::State &state)
{
    schemeBench<Prcat>(state,
                       static_cast<std::uint32_t>(state.range(0)),
                       11u, 32768u);
}
BENCHMARK(BM_PrcatActivate)->Arg(64)->Arg(512);

void
BM_DrcatActivate(benchmark::State &state)
{
    schemeBench<Drcat>(state,
                       static_cast<std::uint32_t>(state.range(0)),
                       11u, 32768u);
}
BENCHMARK(BM_DrcatActivate)->Arg(64)->Arg(512);

void
BM_CounterCacheActivate(benchmark::State &state)
{
    schemeBench<CounterCache>(state, 2048u, 8u, 32768u);
}
BENCHMARK(BM_CounterCacheActivate);

void
BM_CatTreeHammer(benchmark::State &state)
{
    // Worst-case deep leaf: single-row hammer after full growth.
    CatTree::Params p;
    p.numRows = kRows;
    p.numCounters = 64;
    p.maxLevels = 11;
    p.refreshThreshold = 32768;
    p.splitThresholds = computeSplitThresholds(64, 11, 32768);
    CatTree tree(p);
    for (int i = 0; i < 40000; ++i)
        tree.access(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.access(42));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CatTreeHammer);

void
BM_CatTreeReset(benchmark::State &state)
{
    CatTree::Params p;
    p.numRows = kRows;
    p.numCounters = static_cast<std::uint32_t>(state.range(0));
    p.maxLevels = 14;
    p.refreshThreshold = 32768;
    p.splitThresholds =
        computeSplitThresholds(p.numCounters, 14, 32768);
    CatTree tree(p);
    for (auto _ : state)
        tree.reset();
}
BENCHMARK(BM_CatTreeReset)->Arg(64)->Arg(512);

void
BM_Xoshiro(benchmark::State &state)
{
    Xoshiro256StarStar rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

void
BM_LfsrNineBits(benchmark::State &state)
{
    Lfsr lfsr(16, 0xACE1);
    for (auto _ : state)
        benchmark::DoNotOptimize(lfsr.nextBits(9));
}
BENCHMARK(BM_LfsrNineBits);

void
BM_ZipfSample(benchmark::State &state)
{
    Xoshiro256StarStar rng(2);
    ZipfSampler zipf(kRows, 1.1);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

void
BM_ThreadPoolSubmitWait(benchmark::State &state)
{
    // Per-job dispatch cost of the sweep engine's queue: submit a
    // batch of trivial jobs and drain it.
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    ThreadPool pool(jobs);
    std::atomic<std::uint64_t> sink{0};
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            pool.submit([&sink] { sink.fetch_add(1); });
        pool.wait();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ThreadPoolSubmitWait)->Arg(1)->Arg(4);

void
BM_ParallelForOverhead(benchmark::State &state)
{
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    std::atomic<std::uint64_t> sink{0};
    for (auto _ : state) {
        parallelFor(
            256, [&sink](std::size_t i) { sink.fetch_add(i); }, jobs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4);

void
BM_SweepSmallGrid(benchmark::State &state)
{
    // End-to-end SweepRunner: 2 schemes x 2 workloads at a tiny
    // scale; cells share baselines through the shared-future cache.
    const std::size_t jobs = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        SweepRunner sweep(0.02, jobs);
        std::vector<SweepCell> cells;
        for (const char *name : {"comm1", "swapt"}) {
            for (SchemeKind kind :
                 {SchemeKind::Drcat, SchemeKind::Sca}) {
                SweepCell c;
                c.workload.name = name;
                c.scheme.kind = kind;
                cells.push_back(c);
            }
        }
        benchmark::DoNotOptimize(sweep.runCmrpo(cells));
    }
}
BENCHMARK(BM_SweepSmallGrid)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

} // namespace
} // namespace catsim

BENCHMARK_MAIN();
