/**
 * @file
 * Fig 15 (beyond the paper) - scheme-extension design-space study.
 *
 * The paper fixes three design choices that this bench sweeps, one
 * axis per leg, everything through one SweepRunner grid:
 *
 *   eviction   the counter-cache victim policy (Section II baseline):
 *              frozen legacy default vs LRU / LFU / PRNG-random
 *   M +/- 1    CAT counter budgets off the power of two (uneven
 *              deepest pre-split level, see cat_tree.hpp): does the
 *              CMRPO curve move smoothly between pow2 anchors?
 *   pooling    private per-bank CAT counter pools (the paper) vs one
 *              shared pool per rank at iso-storage (8 x 64 counters
 *              serving 8 banks), contention charged through
 *              sramAccesses (DESIGN.md Section 9)
 *
 * CMRPO legs replay a 6-workload cross-suite subset (one baseline
 * timing run per workload, shared across all cells); the pooling leg
 * adds an ETO pair under a Medium multi-target attack, where a shared
 * pool lets the attacked banks grow deeper trees (fewer, narrower
 * victim refreshes) at the price of the rank arbitration energy.
 *
 * Deterministic at any CATSIM_JOBS; metrics are reference-checked by
 * scripts/check_metrics.py at the run_benches.sh scale.
 */

#include <iostream>

#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

/** Cross-suite workload subset (COMM/PARSEC/SPEC/BIO all present). */
const std::vector<std::string> kWorkloads = {"comm2", "black", "libq",
                                             "fluid", "MTC",   "mum"};
const std::size_t kNumWorkloads = kWorkloads.size();

/** Mean CMRPO per config over the subset (shared grid builder). */
std::vector<double>
subsetMeanCmrpo(SweepRunner &sweep,
                const std::vector<SchemeConfig> &configs)
{
    return meanCmrpoPerConfig(sweep, configs, kWorkloads);
}

} // namespace

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Fig 15: scheme extensions - eviction policy, "
                "non-power-of-two M, per-rank counter pools",
                scale, sweep.jobs());
    const std::uint32_t threshold = 32768;

    // Leg 1: counter-cache eviction policy.
    const EvictionPolicyKind policies[] = {
        EvictionPolicyKind::Legacy, EvictionPolicyKind::Lru,
        EvictionPolicyKind::Lfu, EvictionPolicyKind::Random};
    std::vector<SchemeConfig> evictionConfigs;
    for (EvictionPolicyKind p : policies) {
        SchemeConfig cfg =
            mkScheme(SchemeKind::CounterCache, 2048, 0, threshold);
        cfg.evictionPolicy = p;
        evictionConfigs.push_back(cfg);
    }
    const auto evictionMeans = subsetMeanCmrpo(sweep, evictionConfigs);

    std::cout << "counter-cache eviction policy (CC_2048, mean CMRPO "
                 "over " << kNumWorkloads << " workloads):\n";
    TextTable evictionTable({"policy", "mean CMRPO"});
    for (std::size_t i = 0; i < evictionConfigs.size(); ++i) {
        const char *name = evictionPolicyName(policies[i]);
        evictionTable.addRow(
            {name, TextTable::pct(evictionMeans[i], 3)});
        benchMetric("cmrpo_mean_CC_2048_" + std::string(name),
                    evictionMeans[i]);
    }
    evictionTable.print(std::cout);

    // Leg 2: CAT counter budgets around the powers of two.
    const std::uint32_t counterGrid[] = {31, 32, 33, 63, 64, 65};
    std::vector<SchemeConfig> counterConfigs;
    for (std::uint32_t m : counterGrid)
        counterConfigs.push_back(
            mkScheme(SchemeKind::Drcat, m, 11, threshold));
    const auto counterMeans = subsetMeanCmrpo(sweep, counterConfigs);

    std::cout << "\nnon-power-of-two M (DRCAT, L=11, T=32K):\n";
    TextTable counterTable({"M", "mean CMRPO"});
    std::size_t idx = 0;
    for (std::uint32_t m : counterGrid) {
        counterTable.addRow({std::to_string(m),
                             TextTable::pct(counterMeans[idx], 3)});
        benchMetric("cmrpo_mean_DRCAT_M" + std::to_string(m),
                    counterMeans[idx]);
        ++idx;
    }
    counterTable.print(std::cout);

    // Leg 3: private per-bank pools vs one shared pool per rank at
    // iso-storage (8 banks/rank x M counters either way).  M=64 never
    // exhausts a private pool on this suite, so its delta is the pure
    // arbitration/array cost; M=16 is counter-starved and shows the
    // behavioural side (banks competing for the shared budget).
    std::vector<SchemeConfig> poolConfigs;
    const std::uint32_t poolCounters[] = {16, 64};
    for (SchemeKind kind : {SchemeKind::Prcat, SchemeKind::Drcat}) {
        for (std::uint32_t m : poolCounters) {
            for (std::uint32_t pool : {0u, 8u}) {
                SchemeConfig cfg = mkScheme(kind, m, 11, threshold);
                cfg.banksPerPool = pool;
                poolConfigs.push_back(cfg);
            }
        }
    }
    const auto poolMeans = subsetMeanCmrpo(sweep, poolConfigs);

    std::cout << "\nper-bank vs per-rank counter pools (8 banks/rank, "
                 "iso-storage):\n";
    TextTable poolTable({"scheme", "per-bank", "per-rank"});
    // Configs were pushed in (per-bank, per-rank) pairs; the per-bank
    // one's label() ("PRCAT_16") keys both metric columns - the rank
    // suffix lives in the metric name, not the label.
    for (std::size_t c = 0; c < poolConfigs.size(); c += 2) {
        const double perBank = poolMeans[c];
        const double perRank = poolMeans[c + 1];
        const std::string label = poolConfigs[c].label();
        poolTable.addRow({label, TextTable::pct(perBank, 3),
                          TextTable::pct(perRank, 3)});
        benchMetric("cmrpo_mean_" + label + "_perbank", perBank);
        benchMetric("cmrpo_mean_" + label + "_rank8", perRank);
    }
    poolTable.print(std::cout);

    // ETO of the pooling choice through the timing path, where banks
    // compete for the shared budget in true arrival order.  The
    // counter-starved M=16 point under a Heavy attack is where the
    // choice is visible; M=64 stays on the private-pool behaviour.
    std::cout << "\nETO under a Heavy attack (comm2 background, "
                 "kernel 1, DRCAT_16):\n";
    std::vector<SweepCell> etoCells;
    for (std::uint32_t pool : {0u, 8u}) {
        SweepCell c;
        c.preset = SystemPreset::DualCore2Ch;
        c.workload.name = "comm2";
        c.workload.isAttack = true;
        c.workload.attackMode = AttackMode::Heavy;
        c.workload.attackKernel = 1;
        c.scheme = mkScheme(SchemeKind::Drcat, 16, 11, threshold);
        c.scheme.banksPerPool = pool;
        etoCells.push_back(c);
    }
    const std::vector<double> etos = sweep.runEto(etoCells);

    TextTable etoTable({"pooling", "ETO"});
    etoTable.addRow({"per-bank", TextTable::pct(etos[0], 3)});
    etoTable.addRow({"per-rank", TextTable::pct(etos[1], 3)});
    etoTable.print(std::cout);
    benchMetric("eto_attack_DRCAT_16_perbank", etos[0]);
    benchMetric("eto_attack_DRCAT_16_rank8", etos[1]);

    std::cout << "\nExpected shape: the frozen legacy eviction policy "
                 "tracks LRU closely (it is LRU with a different "
                 "invalid-way preference), LFU lags under phase "
                 "changes and random adds PRNG energy per conflict "
                 "miss; CMRPO moves smoothly through non-power-of-two "
                 "M (the uneven pre-split level adds no cliff); and "
                 "per-rank pooling does NOT pay on this suite - the "
                 "demand is symmetric across banks, so sharing buys "
                 "no borrowing headroom while every activation pays "
                 "the rank arbitration access and the larger shared "
                 "array, vindicating the paper's per-bank choice.\n";
    return 0;
}
