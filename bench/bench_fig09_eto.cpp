/**
 * @file
 * Fig 9 - execution time overhead (ETO) per workload from refreshing
 * vulnerable rows, for the same scheme matrix as Fig 8.  ETO comes
 * from full closed-loop timing runs: victim refreshes block their
 * bank, delaying subsequent requests.
 *
 * Each T-figure is one SweepRunner ETO grid (18 workloads x 5
 * schemes); every cell is an independent timing run, so this is the
 * bench that gains the most from CATSIM_JOBS.  Rows are reassembled
 * from the cell-indexed results, bit-identical to the serial loops.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

void
figure(SweepRunner &sweep, std::uint32_t threshold)
{
    const double p = praProbabilityFor(threshold);
    const SchemeConfig configs[] = {
        mkScheme(SchemeKind::Pra, 0, 0, threshold, p),
        mkScheme(SchemeKind::Sca, 64, 0, threshold),
        mkScheme(SchemeKind::Sca, 128, 0, threshold),
        mkScheme(SchemeKind::Prcat, 64, 11, threshold),
        mkScheme(SchemeKind::Drcat, 64, 11, threshold),
    };

    const auto &suite = workloadSuite();
    std::vector<SweepCell> cells;
    cells.reserve(suite.size() * std::size(configs));
    for (const auto &profile : suite) {
        for (const auto &cfg : configs) {
            SweepCell c;
            c.workload.name = profile.name;
            c.scheme = cfg;
            cells.push_back(c);
        }
    }
    const auto etos = sweep.runEto(cells);

    std::cout << "--- T = " << threshold / 1024 << "K ---\n";
    std::vector<std::string> header{"workload", "suite"};
    for (const auto &c : configs)
        header.push_back(c.label());
    TextTable table(header);

    std::vector<RunningStat> mean(std::size(configs));
    std::size_t idx = 0;
    for (const auto &profile : suite) {
        std::vector<std::string> row{profile.name, profile.suite};
        for (std::size_t i = 0; i < std::size(configs); ++i) {
            const double e = etos[idx++];
            mean[i].add(e);
            row.push_back(TextTable::pct(e, 3));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> meanRow{"Mean", "-"};
    for (std::size_t i = 0; i < std::size(configs); ++i) {
        meanRow.push_back(TextTable::pct(mean[i].mean(), 3));
        benchMetric("eto_mean_T" + std::to_string(threshold / 1024)
                        + "K_" + configs[i].label(),
                    mean[i].mean());
    }
    table.addRow(std::move(meanRow));
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Fig 9: execution time overhead (ETO)", scale,
                sweep.jobs());
    figure(sweep, 32768);
    figure(sweep, 16384);
    std::cout << "Expected shape (paper, T=32K): PRA 0.26%, SCA64 "
                 "1.32%, SCA128 0.43%, PRCAT64 0.23%, DRCAT64 0.16%; "
                 "all grow at T=16K with SCA64 worst (3.42%).\n";
    return 0;
}
