/**
 * @file
 * Fig 11 - effect of the address mapping policy and core count on
 * CMRPO at iso-area storage: dual-core/2-channel (SCA_128, PRCAT_64,
 * DRCAT_64) vs quad-core/2-channel and quad-core/4-channel (SCA_256,
 * PRCAT_128, DRCAT_128), for T=32K and T=16K.  Quad-core banks have
 * 128K rows (paper Fig 11 caption).
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

double
meanCmrpo(ExperimentRunner &runner, SystemPreset preset,
          const SchemeConfig &cfg)
{
    RunningStat stat;
    for (const auto &profile : workloadSuite()) {
        WorkloadSpec w;
        w.name = profile.name;
        stat.add(runner.evalCmrpo(preset, w, cfg).cmrpo);
    }
    return stat.mean();
}

void
figure(ExperimentRunner &runner, std::uint32_t threshold)
{
    const double p = praProbabilityFor(threshold);
    std::cout << "--- T = " << threshold / 1024 << "K ---\n";
    TextTable table({"system", "PRA", "SCA", "PRCAT", "DRCAT"});

    struct Row
    {
        const char *name;
        SystemPreset preset;
        std::uint32_t sca, cat;
    };
    const Row rows[] = {
        {"dual-core/2ch", SystemPreset::DualCore2Ch, 128, 64},
        {"quad-core/2ch", SystemPreset::QuadCore2Ch, 256, 128},
        {"quad-core/4ch", SystemPreset::QuadCore4Ch, 256, 128},
    };
    for (const Row &r : rows) {
        table.addRow(
            {r.name,
             TextTable::pct(meanCmrpo(runner, r.preset,
                                      mkScheme(SchemeKind::Pra, 0, 0,
                                               threshold, p)),
                            2),
             TextTable::pct(meanCmrpo(runner, r.preset,
                                      mkScheme(SchemeKind::Sca, r.sca,
                                               0, threshold)),
                            2),
             TextTable::pct(
                 meanCmrpo(runner, r.preset,
                           mkScheme(SchemeKind::Prcat, r.cat, 11,
                                    threshold)),
                 2),
             TextTable::pct(
                 meanCmrpo(runner, r.preset,
                           mkScheme(SchemeKind::Drcat, r.cat, 11,
                                    threshold)),
                 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    const double scale = benchScale();
    benchBanner("Fig 11: mapping policy and core count", scale);
    ExperimentRunner runner(scale);
    figure(runner, 32768);
    figure(runner, 16384);
    std::cout << "Expected shape (paper): quad-core/2ch worst (more "
                 "traffic per bank, SCA hit hardest - 21% vs DRCAT 7% "
                 "at T=16K); the 4-channel policy lowers CMRPO for all "
                 "schemes (64 banks instead of 16).\n";
    return 0;
}
