/**
 * @file
 * Fig 11 - effect of the address mapping policy and core count on
 * CMRPO at iso-area storage: dual-core/2-channel (SCA_128, PRCAT_64,
 * DRCAT_64) vs quad-core/2-channel and quad-core/4-channel (SCA_256,
 * PRCAT_128, DRCAT_128), for T=32K and T=16K.  Quad-core banks have
 * 128K rows (paper Fig 11 caption).
 *
 * Each T-figure is one SweepRunner grid over
 * (system x 4 schemes x 18 workloads); per-config means accumulate in
 * suite order from the cell-indexed results, so the table matches the
 * old serial loops bit for bit at any CATSIM_JOBS.
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "bench_common.hpp"

using namespace catsim;

namespace
{

void
figure(SweepRunner &sweep, std::uint32_t threshold)
{
    const double p = praProbabilityFor(threshold);
    std::cout << "--- T = " << threshold / 1024 << "K ---\n";

    struct Row
    {
        const char *name;
        SystemPreset preset;
        std::uint32_t sca, cat;
    };
    const Row rows[] = {
        {"dual-core/2ch", SystemPreset::DualCore2Ch, 128, 64},
        {"quad-core/2ch", SystemPreset::QuadCore2Ch, 256, 128},
        {"quad-core/4ch", SystemPreset::QuadCore4Ch, 256, 128},
    };

    // 4 scheme configs per system row, 18 workloads per config.
    const auto &suite = workloadSuite();
    std::vector<SweepCell> cells;
    cells.reserve(std::size(rows) * 4 * suite.size());
    for (const Row &r : rows) {
        const SchemeConfig cfgs[] = {
            mkScheme(SchemeKind::Pra, 0, 0, threshold, p),
            mkScheme(SchemeKind::Sca, r.sca, 0, threshold),
            mkScheme(SchemeKind::Prcat, r.cat, 11, threshold),
            mkScheme(SchemeKind::Drcat, r.cat, 11, threshold),
        };
        for (const SchemeConfig &cfg : cfgs) {
            for (const auto &profile : suite) {
                SweepCell c;
                c.preset = r.preset;
                c.workload.name = profile.name;
                c.scheme = cfg;
                cells.push_back(c);
            }
        }
    }
    const auto results = sweep.runCmrpo(cells);

    TextTable table({"system", "PRA", "SCA", "PRCAT", "DRCAT"});
    const char *schemeNames[] = {"PRA", "SCA", "PRCAT", "DRCAT"};
    std::size_t idx = 0;
    for (const Row &r : rows) {
        std::vector<std::string> out{r.name};
        for (const char *scheme : schemeNames) {
            RunningStat stat;
            for (std::size_t w = 0; w < suite.size(); ++w)
                stat.add(results[idx++].cmrpo);
            out.push_back(TextTable::pct(stat.mean(), 2));
            benchMetric("cmrpo_mean_T"
                            + std::to_string(threshold / 1024) + "K_"
                            + std::string(r.name) + "_" + scheme,
                        stat.mean());
        }
        table.addRow(std::move(out));
    }
    table.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main()
{
    const double scale = benchScale();
    SweepRunner sweep(scale);
    benchBanner("Fig 11: mapping policy and core count", scale,
                sweep.jobs());
    figure(sweep, 32768);
    figure(sweep, 16384);
    std::cout << "Expected shape (paper): quad-core/2ch worst (more "
                 "traffic per bank, SCA hit hardest - 21% vs DRCAT 7% "
                 "at T=16K); the 4-channel policy lowers CMRPO for all "
                 "schemes (64 banks instead of 16).\n";
    return 0;
}
